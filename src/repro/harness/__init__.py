"""Experiment harness: per-figure runners, capability table, silicon
reference model."""

from .capabilities import TABLE1, format_table, verify_crisp_row
from .report import (
    draw_rows,
    sim_rows,
    write_csv,
    write_draw_report,
    write_sim_report,
)
from .hwref import (
    deterministic_factor,
    reference_frame_cycles,
    reference_tex_transactions,
    reference_vs_invocations,
    roofline_cycles,
)

__all__ = [
    "TABLE1",
    "deterministic_factor",
    "draw_rows",
    "format_table",
    "reference_frame_cycles",
    "reference_tex_transactions",
    "reference_vs_invocations",
    "roofline_cycles",
    "sim_rows",
    "verify_crisp_row",
    "write_csv",
    "write_draw_report",
    "write_sim_report",
]
