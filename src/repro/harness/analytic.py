"""Analytical GPU performance model (Hong & Kim style) — the baseline the
paper's related work dismisses for contention studies.

Section VII: "Many other works aim to estimate GPU performance using
analytic models.  However, analytic models are too high level and not
suitable for studying the contention between multiple workloads."  To make
that argument reproducible, this module implements a representative
MWP/CWP-flavoured analytical estimator and a naive composition rule for
concurrent workloads, which the benchmarks compare against the cycle model.

The estimator sees only aggregate trace statistics (instruction counts per
unit, memory transactions, occupancy bound) — it cannot see cache
interleaving, bank conflicts, or partition policies, which is precisely
why its concurrent estimates are blind to policy choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..config import GPUConfig
from ..isa import KernelTrace, Space, Unit


@dataclass(frozen=True)
class AnalyticEstimate:
    """Cycle estimate with its intermediate terms (for inspection)."""

    cycles: float
    compute_cycles: float
    memory_cycles: float
    mwp: float  # memory warp parallelism
    cwp: float  # computation warp parallelism

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles


def _trace_statistics(kernels: Sequence[KernelTrace]) -> Dict[str, float]:
    issue = {u: 0 for u in Unit}
    mem_transactions = 0
    warps = 0
    for k in kernels:
        for cta in k.ctas:
            warps += cta.num_warps
            for warp in cta.warps:
                for inst in warp:
                    issue[inst.info.unit] += 1
                    if inst.mem is not None and inst.info.space is Space.GLOBAL:
                        mem_transactions += len(inst.mem.lines)
    return {
        "issue": issue,
        "mem_transactions": mem_transactions,
        "warps": max(1, warps),
    }


#: Average memory latency the analytic model assumes (it has no cache
#: model, so one blended number stands in for the hierarchy).
ASSUMED_MEM_LATENCY = 250.0


def estimate_cycles(kernels: Sequence[KernelTrace],
                    config: GPUConfig) -> AnalyticEstimate:
    """MWP/CWP-style estimate of one workload's execution time."""
    if not kernels:
        raise ValueError("no kernels to estimate")
    stats = _trace_statistics(kernels)
    issue = stats["issue"]
    warps = stats["warps"]
    total_inst = sum(issue.values())
    mem_inst = issue[Unit.MEM]
    comp_inst = total_inst - mem_inst

    pipes = {
        Unit.FP: config.fp_units, Unit.INT: config.int_units,
        Unit.SFU: config.sfu_units, Unit.TENSOR: config.tensor_units,
    }
    # Computation cycles: per-unit issue throughput over the whole chip.
    comp_cycles = max(
        (issue[u] / (pipes[u] * config.num_sms) for u in pipes), default=0.0)
    # Memory cycles: transactions over DRAM bandwidth (the model cannot
    # know hit rates, so it assumes a fixed service cost per transaction).
    bytes_per_cycle = config.dram_bytes_per_cycle
    mem_cycles = stats["mem_transactions"] * config.l2.line_size * 0.35 \
        / bytes_per_cycle

    # Warp parallelism terms (the Hong-Kim structure).
    warps_per_sm = min(config.max_warps_per_sm,
                       max(1.0, warps / config.num_sms))
    mem_per_warp = max(1.0, mem_inst / warps)
    comp_per_warp = max(1.0, comp_inst / warps)
    mwp = min(warps_per_sm, ASSUMED_MEM_LATENCY / max(1.0, mem_per_warp))
    cwp = min(warps_per_sm, 1.0 + comp_per_warp / max(1.0, mem_per_warp))
    if mwp >= cwp:
        # Memory latency fully hidden: compute throughput rules.
        cycles = max(comp_cycles, mem_cycles)
    else:
        # Exposed memory latency scales with the hiding shortfall.
        exposure = 1.0 + (cwp - mwp) / max(1.0, warps_per_sm)
        cycles = max(comp_cycles, mem_cycles) * exposure
    return AnalyticEstimate(cycles=cycles, compute_cycles=comp_cycles,
                            memory_cycles=mem_cycles, mwp=mwp, cwp=cwp)


def estimate_concurrent(workloads: Dict[int, Sequence[KernelTrace]],
                        config: GPUConfig) -> float:
    """The analytic model's only option for concurrency: additive resource
    composition.  It has no notion of partition policy, cache contention,
    or unit complementarity — every policy gets the same number."""
    if not workloads:
        raise ValueError("no workloads")
    per_stream = [estimate_cycles(ks, config) for ks in workloads.values()]
    comp = sum(e.compute_cycles for e in per_stream)
    mem = sum(e.memory_cycles for e in per_stream)
    exposure = max(
        e.cycles / max(1e-9, max(e.compute_cycles, e.memory_cycles))
        for e in per_stream)
    return max(comp, mem) * exposure
