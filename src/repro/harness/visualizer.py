"""Visualizer logs: the artifact's ``*-VISUAL`` run output analog.

The CRISP artifact's simulations emit visualizer logs that the plotting
scripts (``l2breakdown.py``, ``concurrent_ratio.py``) consume.  This module
serialises a run's sampled time series (occupancy per stream, L2
composition per class and per stream) to a JSON-lines log, parses it back,
and renders quick ASCII charts — so sweeps can be analysed offline without
re-simulating.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import DataClass
from ..timing.stats import GPUStats

#: Record kinds in the log.
KIND_OCCUPANCY = "occupancy"
KIND_L2_CLASS = "l2_class"
KIND_L2_STREAM = "l2_stream"


def dump_log(path: str, stats: GPUStats,
             metadata: Optional[Dict[str, object]] = None) -> int:
    """Write the sampled series of ``stats`` as JSON lines.

    Returns the number of records written.  Requires the run to have been
    sampled (``GPU(sample_interval=...)``).
    """
    if not stats.occupancy_trace and not stats.l2_snapshots:
        raise ValueError("run has no samples; construct the GPU with "
                         "sample_interval to record time series")
    n = 0
    with open(path, "w") as f:
        f.write(json.dumps({"kind": "header",
                            "cycles": stats.cycles,
                            "metadata": metadata or {}}) + "\n")
        for sample in stats.occupancy_trace:
            f.write(json.dumps({
                "kind": KIND_OCCUPANCY,
                "cycle": sample.cycle,
                "warps": {str(k): v for k, v in sample.warps_by_stream.items()},
                "slots": sample.total_warp_slots,
            }) + "\n")
            n += 1
        for cycle, comp in stats.l2_snapshots:
            f.write(json.dumps({
                "kind": KIND_L2_CLASS,
                "cycle": cycle,
                "lines": {cls.value: v for cls, v in comp.items()},
            }) + "\n")
            n += 1
        for cycle, comp in stats.l2_stream_snapshots:
            f.write(json.dumps({
                "kind": KIND_L2_STREAM,
                "cycle": cycle,
                "lines": {str(k): v for k, v in comp.items()},
            }) + "\n")
            n += 1
    return n


class VisualizerLog:
    """Parsed visualizer log."""

    def __init__(self, cycles: int, metadata: Dict[str, object],
                 occupancy: List[dict], l2_class: List[dict],
                 l2_stream: List[dict]) -> None:
        self.cycles = cycles
        self.metadata = metadata
        self._occupancy = occupancy
        self._l2_class = l2_class
        self._l2_stream = l2_stream

    @property
    def num_records(self) -> int:
        return len(self._occupancy) + len(self._l2_class) + len(self._l2_stream)

    def occupancy_series(self, stream: int) -> List[Tuple[int, float]]:
        """(cycle, occupancy fraction) for one stream."""
        out = []
        for rec in self._occupancy:
            warps = rec["warps"].get(str(stream), 0)
            out.append((rec["cycle"], warps / rec["slots"]))
        return out

    def l2_class_series(self, cls: DataClass) -> List[Tuple[int, float]]:
        """(cycle, fraction of occupied L2) for one data class."""
        out = []
        for rec in self._l2_class:
            total = sum(rec["lines"].values())
            frac = rec["lines"].get(cls.value, 0) / total if total else 0.0
            out.append((rec["cycle"], frac))
        return out

    def l2_stream_series(self, stream: int) -> List[Tuple[int, float]]:
        out = []
        for rec in self._l2_stream:
            total = sum(rec["lines"].values())
            frac = rec["lines"].get(str(stream), 0) / total if total else 0.0
            out.append((rec["cycle"], frac))
        return out


def load_log(path: str) -> VisualizerLog:
    cycles = 0
    metadata: Dict[str, object] = {}
    occupancy: List[dict] = []
    l2_class: List[dict] = []
    l2_stream: List[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("kind")
            if kind == "header":
                cycles = rec["cycles"]
                metadata = rec.get("metadata", {})
            elif kind == KIND_OCCUPANCY:
                occupancy.append(rec)
            elif kind == KIND_L2_CLASS:
                l2_class.append(rec)
            elif kind == KIND_L2_STREAM:
                l2_stream.append(rec)
            else:
                raise ValueError("unknown record kind %r" % kind)
    return VisualizerLog(cycles, metadata, occupancy, l2_class, l2_stream)


def ascii_series(series: Sequence[Tuple[int, float]], width: int = 50,
                 label: str = "") -> str:
    """Render a (cycle, fraction) series as an ASCII strip chart."""
    if not series:
        return "%s (empty)" % label
    lines = []
    if label:
        lines.append(label)
    for cycle, frac in series:
        bar = "#" * int(max(0.0, min(1.0, frac)) * width)
        lines.append("%10d |%-*s| %5.1f%%" % (cycle, width, bar, frac * 100))
    return "\n".join(lines)
