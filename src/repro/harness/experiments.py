"""Experiment runners: one per table/figure of the paper.

Each function is self-contained — it builds its workloads, runs the
simulations, and returns a plain-data result object the benchmarks print
and assert on.  Default configurations use the mini presets so every
experiment completes in seconds; the experiment-to-module mapping lives in
DESIGN.md's experiment index and measured-vs-paper numbers are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import (
    concordance,
    correlation_percent,
    graphics_vs_compute,
    mape,
    mean_fraction,
    mode,
)
from ..analysis.working_set import binned_histogram
from ..api import simulate
from ..compute import build_compute_workload
from ..config import GPUConfig, JETSON_ORIN_MINI, RTX_3070_MINI, RTX_3070_NANO
from ..core import (
    COMPUTE_STREAM,
    CRISP,
    GRAPHICS_STREAM,
    TAPPolicy,
)
from ..graphics import Texture2D, checkerboard
from ..isa import DataClass, KernelTrace
from ..scenes import build_scene, resolution, scene_codes
from ..timing import GPU
from . import hwref

#: Workload pairs evaluated in the concurrency case studies.
PAIR_SCENES = ("SPH", "PT", "SPL")
PAIR_COMPUTE = ("VIO", "HOLO", "NN")


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def run_table2() -> Dict[str, List[Tuple[str, object]]]:
    """Table II: the two machine configurations."""
    from ..config import JETSON_ORIN, RTX_3070
    return {
        "JetsonOrin": JETSON_ORIN.summary_rows(),
        "RTX3070": RTX_3070.summary_rows(),
    }


# ---------------------------------------------------------------------------
# Fig 3 — vertex shader invocations vs batch size
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    #: batch size -> correlation (%) between sim and reference counts.
    correlation_by_batch: Dict[int, float]
    #: per-draw (scene, draw, sim invocations, reference invocations) at 96.
    rows: List[Tuple[str, str, int, int]]

    @property
    def best_batch(self) -> int:
        return max(self.correlation_by_batch,
                   key=lambda b: self.correlation_by_batch[b])


def run_fig3(batch_sizes: Sequence[int] = (8, 32, 96, 192),
             codes: Optional[Sequence[str]] = None) -> Fig3Result:
    """Vertex batching correlation sweep (best at batch = 96)."""
    from ..graphics.vertex_batch import build_batches, total_shader_invocations
    codes = list(codes or scene_codes())
    draws = []
    for code in codes:
        scene = build_scene(code)
        for d in scene.draws:
            draws.append((code, d))
    correlations: Dict[int, float] = {}
    rows: List[Tuple[str, str, int, int]] = []
    for bs in batch_sizes:
        sim_counts = []
        ref_counts = []
        for code, d in draws:
            batches = build_batches(d.mesh.indices, bs)
            sim = total_shader_invocations(batches) * d.instance_count
            ref = hwref.reference_vs_invocations(d.mesh.indices) * d.instance_count
            sim_counts.append(sim)
            ref_counts.append(ref)
            if bs == 96:
                rows.append((code, d.name, sim, ref))
        # Concordance: penalises the inflation/deflation wrong batch sizes
        # introduce, which plain Pearson would wash out.
        correlations[bs] = concordance(ref_counts, sim_counts) * 100.0
    return Fig3Result(correlations, rows)


# ---------------------------------------------------------------------------
# Fig 6 — frame time correlation vs the silicon reference
# ---------------------------------------------------------------------------

@dataclass
class Fig6Result:
    #: (scene, res, simulated cycles, reference cycles)
    rows: List[Tuple[str, str, int, float]]
    correlation: float

    def scaling(self, code: str) -> float:
        """Simulated 4K/2K frame-time ratio for one scene."""
        by = {(c, r): cyc for c, r, cyc, _ in self.rows}
        return by[(code, "4k")] / by[(code, "2k")]


def run_fig6(config: Optional[GPUConfig] = None,
             codes: Optional[Sequence[str]] = None,
             resolutions: Sequence[str] = ("2k", "4k")) -> Fig6Result:
    # The nano preset restores the paper's pixels-per-SM regime for the
    # scaled-down frames (see config.presets.RTX_3070_NANO).
    config = config or RTX_3070_NANO
    codes = list(codes or scene_codes())
    crisp = CRISP(config)
    rows: List[Tuple[str, str, int, float]] = []
    for code in codes:
        for res in resolutions:
            frame = crisp.trace_scene(code, res)
            stats = simulate(config=config,
                             streams={GRAPHICS_STREAM: frame.kernels}).stats
            ref = hwref.reference_frame_cycles(
                frame.kernels, config, "%s@%s" % (code, res))
            rows.append((code, res, stats.cycles, ref))
    if len(rows) >= 2:
        corr = correlation_percent([r[3] for r in rows], [r[2] for r in rows])
    else:
        corr = float("nan")
    return Fig6Result(rows, corr)


# ---------------------------------------------------------------------------
# Fig 7 — mip-level request merging on a 4x4 texture
# ---------------------------------------------------------------------------

@dataclass
class Fig7Result:
    loads_level0: int
    loads_level1: int


def run_fig7() -> Fig7Result:
    """Four texel loads at mip 0 merge into one at mip 1 (Fig 7)."""
    tex = Texture2D("demo4x4", checkerboard(4, squares=2))
    from ..memory.address import AddressAllocator
    tex.place(AddressAllocator(region=9))
    # Four samples inside the [0, 0.5) x [0, 0.5) quadrant.
    u = np.array([0.05, 0.30, 0.05, 0.30])
    v = np.array([0.05, 0.05, 0.30, 0.30])
    _, a0 = tex.sample_nearest(u, v, lod=np.zeros(4))
    _, a1 = tex.sample_nearest(u, v, lod=np.ones(4))
    return Fig7Result(len(np.unique(a0)), len(np.unique(a1)))


# ---------------------------------------------------------------------------
# Fig 9 — L1 texture traffic: LoD on vs off
# ---------------------------------------------------------------------------

@dataclass
class Fig9Result:
    #: per-draw rows: (scene, draw, tx lod-on, tx lod-off, reference)
    rows: List[Tuple[str, str, int, int, float]]
    mape_lod_on: float
    mape_lod_off: float

    @property
    def mape_reduction(self) -> float:
        return self.mape_lod_off / max(self.mape_lod_on, 1e-9)


def run_fig9(codes: Optional[Sequence[str]] = None, res: str = "2k"
             ) -> Fig9Result:
    codes = list(codes or scene_codes())
    crisp = CRISP()
    rows: List[Tuple[str, str, int, int, float]] = []
    for code in codes:
        frame_on = crisp.trace_scene(code, res, lod_enabled=True)
        frame_off = crisp.trace_scene(code, res, lod_enabled=False)
        for d_on, d_off in zip(frame_on.draw_stats, frame_off.draw_stats):
            if d_on.tex_transactions == 0:
                continue
            ref = hwref.reference_tex_transactions(
                "%s/%s" % (code, d_on.name), d_on.tex_transactions)
            rows.append((code, d_on.name, d_on.tex_transactions,
                         d_off.tex_transactions, ref))
    refs = [r[4] for r in rows]
    m_on = mape(refs, [r[2] for r in rows])
    m_off = mape(refs, [r[3] for r in rows])
    return Fig9Result(rows, m_on, m_off)


# ---------------------------------------------------------------------------
# Fig 10 — TEX cache lines per CTA histogram
# ---------------------------------------------------------------------------

@dataclass
class Fig10Result:
    draw_name: str
    lines_per_cta: List[int]
    histogram: List[Tuple[int, int]]
    mode: int
    mean: float


def run_fig10(code: str = "SPL", res: str = "2k",
              draw_index: int = 0) -> Fig10Result:
    crisp = CRISP()
    frame = crisp.trace_scene(code, res)
    stats = [d for d in frame.draw_stats if d.tex_lines_per_cta]
    if draw_index >= len(stats):
        raise IndexError("scene %s has %d texturing draws" % (code, len(stats)))
    d = stats[draw_index]
    lines = d.tex_lines_per_cta
    return Fig10Result(
        draw_name=d.name,
        lines_per_cta=list(lines),
        histogram=binned_histogram(lines),
        mode=mode(lines),
        mean=sum(lines) / len(lines),
    )


# ---------------------------------------------------------------------------
# Fig 11 — L2 composition: PBR vs basic shading
# ---------------------------------------------------------------------------

@dataclass
class Fig11Result:
    #: scene code -> mean texture fraction of occupied L2.
    texture_share: Dict[str, float]
    #: scene code -> overall L2 hit rate.
    l2_hit_rate: Dict[str, float]
    #: scene code -> (cycle, {class: lines}) snapshots.
    snapshots: Dict[str, list]


def run_fig11(codes: Sequence[str] = ("PT", "SPL"),
              config: Optional[GPUConfig] = None, res: str = "2k",
              sample_interval: int = 800) -> Fig11Result:
    config = config or RTX_3070_MINI
    crisp = CRISP(config)
    tex_share: Dict[str, float] = {}
    hit: Dict[str, float] = {}
    snaps: Dict[str, list] = {}
    for code in codes:
        frame = crisp.trace_scene(code, res)
        gpu = GPU(config, sample_interval=sample_interval)
        gpu.add_stream(GRAPHICS_STREAM, frame.kernels)
        stats = gpu.run()
        tex_share[code] = mean_fraction(stats.l2_snapshots, DataClass.TEXTURE)
        l2 = gpu.l2.aggregate_stats()
        hit[code] = l2.hit_rate
        snaps[code] = stats.l2_snapshots
    return Fig11Result(tex_share, hit, snaps)


# ---------------------------------------------------------------------------
# Concurrency studies (Fig 12-15)
# ---------------------------------------------------------------------------

#: Compute-workload sizing for the pairing studies: each workload is scaled
#: so it runs for a comparable span as one rendering frame, as the paper's
#: co-executed traces do.  Plain argument dicts so the sizing travels
#: inside declarative campaign job specs.
PAIR_COMPUTE_ARGS: Dict[str, Dict[str, object]] = {
    "VIO": {"frames": 2},
    "HOLO": {"passes": 3},
    "NN": {"coverage": 1.0, "inferences": 3},
}


def _pair_streams(crisp: CRISP, scene: str, compute: str, res: str = "2k"
                  ) -> Dict[int, List[KernelTrace]]:
    frame = crisp.trace_scene(scene, res)
    kernels = build_compute_workload(
        compute, **PAIR_COMPUTE_ARGS.get(compute, {}))
    return {GRAPHICS_STREAM: frame.kernels, COMPUTE_STREAM: kernels}


def _pair_job(scene: str, compute: str, policy: str, config: GPUConfig,
              res: str, sample_interval: Optional[int] = None) -> "Job":
    """One concurrency-study point as a campaign job spec."""
    from ..campaign import Job
    return Job(scene=scene, compute=compute,
               compute_args=PAIR_COMPUTE_ARGS.get(compute),
               policy=policy, config=config, res=res,
               sample_interval=sample_interval,
               label="%s+%s/%s" % (scene, compute, policy))


@dataclass
class PolicyComparison:
    """Total-time comparison of several policies over workload pairs."""

    #: pair name -> {policy: total cycles}
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    baseline: str = "mps"

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """Speedup over the baseline policy (higher is better)."""
        out: Dict[str, Dict[str, float]] = {}
        for pair, by_policy in self.cycles.items():
            base = by_policy[self.baseline]
            out[pair] = {pol: base / c for pol, c in by_policy.items()}
        return out

    def mean_speedup(self, policy: str) -> float:
        norm = self.normalized()
        vals = [norm[p][policy] for p in norm]
        return float(np.exp(np.mean(np.log(vals))))


def run_policy_comparison(
    policies: Sequence[str],
    config: GPUConfig,
    scenes: Sequence[str] = PAIR_SCENES,
    compute: Sequence[str] = PAIR_COMPUTE,
    res: str = "4k",
    baseline: str = "mps",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    runner=None,
) -> PolicyComparison:
    """Scene x compute x policy sweep through the campaign runner.

    ``jobs`` fans the sweep out over worker processes; ``cache_dir`` (or a
    pre-built ``runner``) turns re-runs into cache hits.  Results are
    identical to the old serial in-process loop — campaign job ordering is
    deterministic and each point's traces regenerate bit-identically.
    """
    from ..campaign import CampaignRunner
    if runner is None:
        runner = CampaignRunner(workers=jobs, cache_dir=cache_dir)
    specs = [
        _pair_job(scene, comp, pol_name, config, res)
        for scene in scenes
        for comp in compute
        for pol_name in policies
    ]
    campaign = runner.run(specs)
    failures = campaign.failures()
    if failures:
        raise RuntimeError("policy sweep failed: %s"
                           % "; ".join("%s (%s)" % (f.label, f.status)
                                       for f in failures))
    result = PolicyComparison(baseline=baseline)
    it = iter(campaign.results)
    for scene in scenes:
        for comp in compute:
            pair_name = "%s+%s" % (scene, comp)
            result.cycles[pair_name] = {
                pol_name: next(it).total_cycles for pol_name in policies}
    return result


def run_fig12(config: Optional[GPUConfig] = None, **kw) -> PolicyComparison:
    """Warped-Slicer study on the Orin: MPS vs FG-EVEN vs Dynamic."""
    return run_policy_comparison(
        ("mps", "fg-even", "warped-slicer"),
        config or JETSON_ORIN_MINI, **kw)


def run_fig14(config: Optional[GPUConfig] = None, **kw) -> PolicyComparison:
    """TAP study on the RTX 3070: MPS vs MiG vs TAP."""
    return run_policy_comparison(
        ("mps", "mig", "tap"), config or RTX_3070_MINI, **kw)


@dataclass
class Fig13Result:
    #: (cycle, graphics occupancy fraction, compute occupancy fraction)
    occupancy: List[Tuple[int, float, float]]
    #: (cycle, chosen graphics fraction) warped-slicer decisions.
    decisions: List[Tuple[int, float]]
    samples_taken: int


def run_fig13(scene: str = "PT", compute: str = "VIO",
              config: Optional[GPUConfig] = None, res: str = "4k",
              sample_interval: int = 400, jobs: int = 1,
              cache_dir: Optional[str] = None, runner=None) -> Fig13Result:
    from ..campaign import CampaignRunner
    from ..timing import GPUStats
    config = config or JETSON_ORIN_MINI
    if runner is None:
        runner = CampaignRunner(workers=jobs, cache_dir=cache_dir)
    job = _pair_job(scene, compute, "warped-slicer", config, res,
                    sample_interval=sample_interval)
    campaign = runner.run([job])
    result = campaign.results[0]
    if not result.ok:
        raise RuntimeError("fig13 job failed: %s" % result.error)
    stats = GPUStats.from_dict(result.stats)
    occ = [
        (s.cycle, s.fraction(GRAPHICS_STREAM), s.fraction(COMPUTE_STREAM))
        for s in stats.occupancy_trace
    ]
    decisions = [tuple(d) for d in result.extras.get("decisions", [])]
    return Fig13Result(occ, decisions, result.extras.get("samples_taken", 0))


@dataclass
class Fig15Result:
    #: (cycle, graphics L2 fraction, compute L2 fraction)
    composition: List[Tuple[int, float, float]]
    #: final TAP sets-per-bank decision, {stream: sets}.
    final_ratio: Optional[Dict[int, int]]
    mean_graphics_share: float
    mean_compute_share: float


def run_fig15(scene: str = "SPH", compute: str = "HOLO",
              config: Optional[GPUConfig] = None, res: str = "2k",
              sample_interval: int = 800) -> Fig15Result:
    config = config or RTX_3070_MINI
    crisp = CRISP(config)
    streams = _pair_streams(crisp, scene, compute, res)
    policy = TAPPolicy.even(config.num_sms, sorted(streams))
    gpu = GPU(config, policy=policy, sample_interval=sample_interval)
    for sid, ks in sorted(streams.items()):
        gpu.add_stream(sid, ks)
    stats = gpu.run()
    comp = graphics_vs_compute(stats.l2_snapshots)
    gfx = [g for _, g, _ in comp if g or _]
    cmp_ = [c for _, _, c in comp]
    return Fig15Result(
        composition=comp,
        final_ratio=policy.current_ratio(),
        mean_graphics_share=float(np.mean([g for _, g, c in comp])) if comp else 0.0,
        mean_compute_share=float(np.mean(cmp_)) if cmp_ else 0.0,
    )
