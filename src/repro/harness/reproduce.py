"""One-shot reproduction driver: run every experiment, write a report.

The artifact equivalent of ``run.sh`` + ``collect.sh``: executes each
table/figure runner, writes per-experiment CSVs into an output directory,
and produces ``RESULTS.md`` summarising the headline numbers with their
pass/fail against the paper's shape claims.

Used by ``python -m repro reproduce --out results/``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from . import experiments as E
from .capabilities import format_table, verify_crisp_row


class ExperimentRecord:
    """One experiment's outcome for the report."""

    def __init__(self, exp_id: str, headline: str, ok: bool,
                 seconds: float, lines: Optional[List[str]] = None) -> None:
        self.exp_id = exp_id
        self.headline = headline
        self.ok = ok
        self.seconds = seconds
        self.lines = lines or []


def _run_table1() -> Tuple[str, bool, List[str]]:
    checks = verify_crisp_row()
    ok = all(checks.values())
    return ("CRISP capability row verified (%d checks)" % len(checks), ok,
            format_table().splitlines())


def _run_table2() -> Tuple[str, bool, List[str]]:
    tables = E.run_table2()
    lines = []
    for machine, rows in tables.items():
        lines.append(machine)
        lines.extend("  %-32s %s" % (f, v) for f, v in rows)
    ok = dict(tables["RTX3070"])["# SMs"] == 46
    return ("both machine configurations match Table II", ok, lines)


def _run_fig3() -> Tuple[str, bool, List[str]]:
    r = E.run_fig3(batch_sizes=(8, 32, 96, 192))
    ok = r.correlation_by_batch[96] >= max(
        r.correlation_by_batch.values()) - 0.5
    lines = ["batch %4d: %.2f%%" % (bs, c)
             for bs, c in sorted(r.correlation_by_batch.items())]
    return ("batch=96 at the correlation peak (%.1f%%)"
            % r.correlation_by_batch[96], ok, lines)


def _run_fig6() -> Tuple[str, bool, List[str]]:
    r = E.run_fig6()
    ok = r.correlation > 80 and all(s >= ref for _, _, s, ref in r.rows)
    lines = ["%s@%s sim=%d ref=%.0f" % row for row in r.rows]
    return ("correlation %.1f%%, sim always the slower" % r.correlation,
            ok, lines)


def _run_fig7() -> Tuple[str, bool, List[str]]:
    r = E.run_fig7()
    ok = r.loads_level0 == 4 and r.loads_level1 == 1
    return ("4 loads at mip 0 merge to %d at mip 1" % r.loads_level1, ok, [])


def _run_fig9() -> Tuple[str, bool, List[str]]:
    r = E.run_fig9()
    ok = r.mape_reduction > 4
    return ("LoD cuts L1-TEX MAPE %.0f%% -> %.0f%% (%.1fx)"
            % (r.mape_lod_off, r.mape_lod_on, r.mape_reduction), ok, [])


def _run_fig10() -> Tuple[str, bool, List[str]]:
    r = E.run_fig10()
    ok = 2 <= r.mode <= 8
    lines = ["%3d lines: %d CTAs" % hv for hv in r.histogram]
    return ("mode %d lines/CTA, mean %.1f" % (r.mode, r.mean), ok, lines)


def _run_fig11() -> Tuple[str, bool, List[str]]:
    r = E.run_fig11()
    ok = (r.texture_share["PT"] > 2 * r.texture_share["SPL"]
          and r.l2_hit_rate["SPL"] > r.l2_hit_rate["PT"])
    lines = ["%s: texture %.1f%%, hit rate %.1f%%"
             % (c, r.texture_share[c] * 100, r.l2_hit_rate[c] * 100)
             for c in r.texture_share]
    return ("PBR dominates L2 with texture lines and pays a lower hit rate",
            ok, lines)


def _run_fig12() -> Tuple[str, bool, List[str]]:
    r = E.run_fig12()
    means = {p: r.mean_speedup(p) for p in ("mps", "fg-even", "warped-slicer")}
    ok = means["fg-even"] >= means["warped-slicer"] and means["fg-even"] > 1
    lines = ["%s: %s" % (pair, {k: round(v, 3) for k, v in d.items()})
             for pair, d in sorted(r.normalized().items())]
    return ("EVEN %.3f >= Dynamic %.3f > MPS baseline"
            % (means["fg-even"], means["warped-slicer"]), ok, lines)


def _run_fig13() -> Tuple[str, bool, List[str]]:
    r = E.run_fig13()
    ok = r.samples_taken >= 5 and bool(r.occupancy)
    return ("%d sampling phases, %d completed decisions"
            % (r.samples_taken, len(r.decisions)), ok, [])


def _run_fig14() -> Tuple[str, bool, List[str]]:
    r = E.run_fig14()
    means = {p: r.mean_speedup(p) for p in ("mps", "mig", "tap")}
    ok = means["tap"] > means["mig"] and abs(means["tap"] - 1.0) < 0.08
    lines = ["%s: %s" % (pair, {k: round(v, 3) for k, v in d.items()})
             for pair, d in sorted(r.normalized().items())]
    return ("TAP %.3f ~= MPS > MiG %.3f" % (means["tap"], means["mig"]),
            ok, lines)


def _run_fig15() -> Tuple[str, bool, List[str]]:
    r = E.run_fig15()
    ok = r.mean_graphics_share > 2 * r.mean_compute_share
    return ("TAP gives rendering %.0f%% of the L2 (HOLO: %s sets/bank)"
            % (r.mean_graphics_share * 100,
               r.final_ratio and min(r.final_ratio.values())), ok, [])


#: Experiment id -> runner.
RUNNERS: Dict[str, Callable[[], Tuple[str, bool, List[str]]]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig3": _run_fig3,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "fig15": _run_fig15,
}


def reproduce_all(out_dir: str,
                  only: Optional[List[str]] = None) -> List[ExperimentRecord]:
    """Run the requested experiments, write RESULTS.md, return records."""
    ids = list(only) if only else list(RUNNERS)
    unknown = [i for i in ids if i not in RUNNERS]
    if unknown:
        raise KeyError("unknown experiment ids: %s (known: %s)"
                       % (unknown, sorted(RUNNERS)))
    os.makedirs(out_dir, exist_ok=True)
    records: List[ExperimentRecord] = []
    for exp_id in ids:
        start = time.time()
        headline, ok, lines = RUNNERS[exp_id]()
        records.append(ExperimentRecord(
            exp_id, headline, ok, time.time() - start, lines))
    path = os.path.join(out_dir, "RESULTS.md")
    with open(path, "w") as f:
        f.write("# Reproduction results\n\n")
        f.write("| experiment | outcome | headline | seconds |\n")
        f.write("|---|---|---|---|\n")
        for rec in records:
            f.write("| %s | %s | %s | %.1f |\n"
                    % (rec.exp_id, "PASS" if rec.ok else "CHECK",
                       rec.headline, rec.seconds))
        for rec in records:
            if rec.lines:
                f.write("\n## %s\n\n```\n%s\n```\n"
                        % (rec.exp_id, "\n".join(rec.lines)))
    return records
