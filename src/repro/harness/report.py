"""CSV reports, mirroring the artifact's ``collect.sh`` outputs.

The CRISP artifact collects simulation statistics (execution cycles, cache
hit rates, L2 breakdowns) into CSV files under the framework root.  These
helpers produce the same kind of flat files from a run's
:class:`~repro.timing.stats.GPUStats` and a frame's
:class:`~repro.graphics.tracegen.FrameResult`.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence

from ..graphics.tracegen import FrameResult
from ..isa import Unit
from ..timing.stats import GPUStats

#: Column order of the per-stream simulation report.
SIM_COLUMNS = (
    "stream", "instructions", "busy_cycles", "ipc",
    "l1_accesses", "l1_hit_rate", "l1_tex_accesses",
    "shared_accesses", "ctas", "kernels",
    "fp_issues", "int_issues", "sfu_issues", "tensor_issues", "mem_issues",
)

#: Column order of the per-draw rendering report (render_passes_*.csv).
DRAW_COLUMNS = (
    "draw", "triangles_submitted", "triangles_rasterized", "batches",
    "unique_vertices", "vs_invocations", "fragments", "tex_transactions",
    "mean_tex_lines_per_cta",
)


def sim_rows(stats: GPUStats) -> List[Dict[str, object]]:
    """One row per stream, artifact-CSV style."""
    rows = []
    for sid in sorted(stats.streams):
        s = stats.streams[sid]
        rows.append({
            "stream": sid,
            "instructions": s.instructions,
            "busy_cycles": s.busy_cycles,
            "ipc": round(s.ipc, 4),
            "l1_accesses": s.l1_accesses,
            "l1_hit_rate": round(s.l1_hit_rate, 4),
            "l1_tex_accesses": s.l1_tex_accesses,
            "shared_accesses": s.shared_accesses,
            "ctas": s.ctas_completed,
            "kernels": s.kernels_completed,
            "fp_issues": s.issue_by_unit[Unit.FP],
            "int_issues": s.issue_by_unit[Unit.INT],
            "sfu_issues": s.issue_by_unit[Unit.SFU],
            "tensor_issues": s.issue_by_unit[Unit.TENSOR],
            "mem_issues": s.issue_by_unit[Unit.MEM],
        })
    return rows


def draw_rows(frame: FrameResult) -> List[Dict[str, object]]:
    """One row per draw call of a rendered frame."""
    rows = []
    for d in frame.draw_stats:
        mean_lines = (sum(d.tex_lines_per_cta) / len(d.tex_lines_per_cta)
                      if d.tex_lines_per_cta else 0.0)
        rows.append({
            "draw": d.name,
            "triangles_submitted": d.triangles_submitted,
            "triangles_rasterized": d.triangles_rasterized,
            "batches": d.batches,
            "unique_vertices": d.unique_vertices,
            "vs_invocations": d.vs_invocations,
            "fragments": d.fragments,
            "tex_transactions": d.tex_transactions,
            "mean_tex_lines_per_cta": round(mean_lines, 3),
        })
    return rows


def write_csv(path: str, rows: Sequence[Dict[str, object]],
              columns: Optional[Sequence[str]] = None) -> None:
    """Write rows as CSV; column order defaults to first-row key order."""
    if not rows:
        raise ValueError("no rows to write")
    cols = list(columns) if columns else list(rows[0])
    missing = [c for c in cols if c not in rows[0]]
    if missing:
        raise ValueError("rows lack columns: %s" % missing)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)


#: Column order of the per-kernel timeline report.
TIMELINE_COLUMNS = ("stream", "kernel", "start_cycle", "complete_cycle",
                    "duration")


def timeline_rows(gpu) -> List[Dict[str, object]]:
    """One row per completed kernel across all of a GPU's streams.

    Takes the :class:`~repro.timing.GPU` instance (timelines live on its
    stream queues, not in the stats object).
    """
    rows: List[Dict[str, object]] = []
    for sid in sorted(gpu.cta_scheduler.streams):
        sq = gpu.cta_scheduler.streams[sid]
        for name, start, end in sq.timeline():
            rows.append({
                "stream": sid,
                "kernel": name,
                "start_cycle": start,
                "complete_cycle": end,
                "duration": end - start,
            })
    return rows


def write_timeline_report(path: str, gpu) -> None:
    write_csv(path, timeline_rows(gpu), TIMELINE_COLUMNS)


def write_sim_report(path: str, stats: GPUStats) -> None:
    write_csv(path, sim_rows(stats), SIM_COLUMNS)


def write_draw_report(path: str, frame: FrameResult) -> None:
    write_csv(path, draw_rows(frame), DRAW_COLUMNS)
