"""CSV reports, mirroring the artifact's ``collect.sh`` outputs.

The CRISP artifact collects simulation statistics (execution cycles, cache
hit rates, L2 breakdowns) into CSV files under the framework root.  These
helpers produce the same kind of flat files from a run's
:class:`~repro.timing.stats.GPUStats` and a frame's
:class:`~repro.graphics.tracegen.FrameResult`.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence

from ..graphics.tracegen import FrameResult
from ..isa import Unit
from ..timing.stats import GPUStats

#: Column order of the per-stream simulation report.
SIM_COLUMNS = (
    "stream", "instructions", "busy_cycles", "ipc",
    "l1_accesses", "l1_hit_rate", "l1_tex_accesses",
    "shared_accesses", "ctas", "kernels",
    "fp_issues", "int_issues", "sfu_issues", "tensor_issues", "mem_issues",
)

#: Column order of the per-draw rendering report (render_passes_*.csv).
DRAW_COLUMNS = (
    "draw", "triangles_submitted", "triangles_rasterized", "batches",
    "unique_vertices", "vs_invocations", "fragments", "tex_transactions",
    "mean_tex_lines_per_cta",
)


def sim_rows(stats: GPUStats) -> List[Dict[str, object]]:
    """One row per stream, artifact-CSV style."""
    rows = []
    for sid in sorted(stats.streams):
        s = stats.streams[sid]
        rows.append({
            "stream": sid,
            "instructions": s.instructions,
            "busy_cycles": s.busy_cycles,
            "ipc": round(s.ipc, 4),
            "l1_accesses": s.l1_accesses,
            "l1_hit_rate": round(s.l1_hit_rate, 4),
            "l1_tex_accesses": s.l1_tex_accesses,
            "shared_accesses": s.shared_accesses,
            "ctas": s.ctas_completed,
            "kernels": s.kernels_completed,
            "fp_issues": s.issue_by_unit[Unit.FP],
            "int_issues": s.issue_by_unit[Unit.INT],
            "sfu_issues": s.issue_by_unit[Unit.SFU],
            "tensor_issues": s.issue_by_unit[Unit.TENSOR],
            "mem_issues": s.issue_by_unit[Unit.MEM],
        })
    return rows


def draw_rows(frame: FrameResult) -> List[Dict[str, object]]:
    """One row per draw call of a rendered frame."""
    rows = []
    for d in frame.draw_stats:
        mean_lines = (sum(d.tex_lines_per_cta) / len(d.tex_lines_per_cta)
                      if d.tex_lines_per_cta else 0.0)
        rows.append({
            "draw": d.name,
            "triangles_submitted": d.triangles_submitted,
            "triangles_rasterized": d.triangles_rasterized,
            "batches": d.batches,
            "unique_vertices": d.unique_vertices,
            "vs_invocations": d.vs_invocations,
            "fragments": d.fragments,
            "tex_transactions": d.tex_transactions,
            "mean_tex_lines_per_cta": round(mean_lines, 3),
        })
    return rows


def write_csv(path: str, rows: Sequence[Dict[str, object]],
              columns: Optional[Sequence[str]] = None) -> None:
    """Write rows as CSV; column order defaults to first-row key order."""
    if not rows:
        raise ValueError("no rows to write")
    cols = list(columns) if columns else list(rows[0])
    missing = [c for c in cols if c not in rows[0]]
    if missing:
        raise ValueError("rows lack columns: %s" % missing)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)


#: Column order of the per-kernel timeline report.
TIMELINE_COLUMNS = ("stream", "kernel", "start_cycle", "complete_cycle",
                    "duration")


def timeline_rows(gpu) -> List[Dict[str, object]]:
    """One row per completed kernel across all of a GPU's streams.

    Takes the :class:`~repro.timing.GPU` instance (timelines live on its
    stream queues, not in the stats object).
    """
    rows: List[Dict[str, object]] = []
    for sid in sorted(gpu.cta_scheduler.streams):
        sq = gpu.cta_scheduler.streams[sid]
        for name, start, end in sq.timeline():
            rows.append({
                "stream": sid,
                "kernel": name,
                "start_cycle": start,
                "complete_cycle": end,
                "duration": end - start,
            })
    return rows


def write_timeline_report(path: str, gpu) -> None:
    write_csv(path, timeline_rows(gpu), TIMELINE_COLUMNS)


def write_sim_report(path: str, stats: GPUStats) -> None:
    write_csv(path, sim_rows(stats), SIM_COLUMNS)


def write_draw_report(path: str, frame: FrameResult) -> None:
    write_csv(path, draw_rows(frame), DRAW_COLUMNS)


# ---------------------------------------------------------------------------
# Sampled time-series CSVs (repro simulate --csv + --sample-interval)
# ---------------------------------------------------------------------------

OCCUPANCY_TIMELINE_COLUMNS = ("cycle", "stream", "warps", "total_warp_slots",
                              "occupancy")
L2_TIMELINE_COLUMNS = ("cycle", "stream", "lines", "total_lines", "share")


def occupancy_timeline_rows(stats: GPUStats) -> List[Dict[str, object]]:
    """One row per (sample, stream) of the occupancy trace."""
    rows: List[Dict[str, object]] = []
    for sample in stats.occupancy_trace:
        for sid in sorted(sample.warps_by_stream):
            rows.append({
                "cycle": sample.cycle,
                "stream": sid,
                "warps": sample.warps_by_stream[sid],
                "total_warp_slots": sample.total_warp_slots,
                "occupancy": round(sample.fraction(sid), 4),
            })
    return rows


def l2_timeline_rows(stats: GPUStats) -> List[Dict[str, object]]:
    """One row per (sample, stream) of the L2 line-share snapshots."""
    rows: List[Dict[str, object]] = []
    for cycle, by_stream in stats.l2_stream_snapshots:
        total = sum(by_stream.values())
        for sid in sorted(by_stream):
            rows.append({
                "cycle": cycle,
                "stream": sid,
                "lines": by_stream[sid],
                "total_lines": total,
                "share": round(by_stream[sid] / total, 4) if total else 0.0,
            })
    return rows


def write_timeline_csvs(base_path: str, stats: GPUStats) -> List[str]:
    """Write the sampled time series as siblings of ``base_path``.

    ``stats.csv`` grows ``stats_occupancy_timeline.csv`` and
    ``stats_l2_timeline.csv`` next to it; series with no samples are
    skipped.  Returns the paths written.
    """
    import os
    stem, _ = os.path.splitext(base_path)
    written: List[str] = []
    occ = occupancy_timeline_rows(stats)
    if occ:
        path = stem + "_occupancy_timeline.csv"
        write_csv(path, occ, OCCUPANCY_TIMELINE_COLUMNS)
        written.append(path)
    l2 = l2_timeline_rows(stats)
    if l2:
        path = stem + "_l2_timeline.csv"
        write_csv(path, l2, L2_TIMELINE_COLUMNS)
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# Text telemetry summary (repro telemetry DIR)
# ---------------------------------------------------------------------------

def _bar(fraction: float, width: int) -> str:
    n = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * n + "." * (width - n)


def load_telemetry_views(telemetry_dir: str) -> Dict[str, object]:
    """Extract the renderable views of one telemetry directory.

    Reads ``metrics.jsonl`` (header, samples, final) and, when present,
    ``trace.json`` (balanced async kernel b/e span pairs) into a plain
    JSON-safe dict — the shape the run repository persists and both
    :func:`render_telemetry_views` and the dashboard consume:

    ``header`` / ``final``
        the run-log records, verbatim;
    ``kernel_spans``
        ``[{"name", "tid", "start", "end"}, ...]``;
    ``stall_totals``
        ``{stream: {reason: warp_samples}}`` from the final record;
    ``ipc_series``
        ``{stream: [ipc per sample interval]}``;
    ``repartitions``
        cycle numbers of repartition events.
    """
    import os

    from ..telemetry import METRICS_FILE, TRACE_FILE, read_jsonl

    metrics_path = os.path.join(telemetry_dir, METRICS_FILE)
    records = read_jsonl(metrics_path)
    header = next((r for r in records if r["kind"] == "header"), {})
    samples = [r for r in records if r["kind"] == "sample"]
    final = next((r for r in records if r["kind"] == "final"), {})
    reparts = [r for r in records if r["kind"] == "repartition"]

    spans: List[dict] = []
    trace_path = os.path.join(telemetry_dir, TRACE_FILE)
    if os.path.exists(trace_path):
        import json as _json
        with open(trace_path, "r", encoding="utf-8") as f:
            events = _json.load(f).get("traceEvents", [])
        begins: Dict[object, dict] = {}
        for ev in events:
            if ev.get("cat") != "kernel":
                continue
            if ev["ph"] == "b":
                begins[ev["id"]] = ev
            elif ev["ph"] == "e":
                b = begins.pop(ev["id"], None)
                if b is not None:
                    spans.append({"name": b["name"], "tid": b["tid"],
                                  "start": b["ts"], "end": ev["ts"]})

    stream_ids = sorted({sid for s in samples for sid in s["streams"]},
                        key=int)
    ipc_series = {
        sid: [s["streams"].get(sid, {}).get("ipc", 0.0) for s in samples]
        for sid in stream_ids
    }
    return {
        "source": telemetry_dir,
        "header": header,
        "final": final,
        "kernel_spans": spans,
        "stall_totals": final.get("stall_totals", {}),
        "ipc_series": ipc_series,
        "repartitions": [r["cycle"] for r in reparts],
    }


def render_telemetry_views(views: Dict[str, object],
                           width: int = 60) -> str:
    """Render extracted telemetry views (see :func:`load_telemetry_views`)
    as a terminal report: run header, per-stream kernel timeline bars,
    stall-reason attribution, and an IPC strip chart.

    Operates on plain data, so it renders equally from a loose telemetry
    directory and from views stored in the run repository
    (``repro telemetry --run ID``).
    """
    header = views.get("header") or {}
    final = views.get("final") or {}
    ipc_series: Dict[str, List[float]] = views.get("ipc_series") or {}
    n_samples = len(next(iter(ipc_series.values()), []))

    lines: List[str] = []
    lines.append("telemetry: %s" % views.get("source", "?"))
    if header:
        lines.append(
            "config %s (%s)  policy %s  streams %s  sample interval %s"
            % (header.get("config", "?"),
               str(header.get("config_fingerprint", ""))[:12],
               header.get("policy", "?"), header.get("streams", []),
               header.get("sample_interval")))
    if final:
        lines.append("run: %d cycles, %d instructions, %d samples"
                     % (final.get("cycles", 0),
                        final.get("total_instructions", 0),
                        final.get("samples", n_samples)))
    total_cycles = final.get("cycles", 0)

    spans = views.get("kernel_spans") or []
    if spans and total_cycles:
        lines.append("")
        lines.append("kernel timeline (one bar per kernel, full width ="
                     " %d cycles):" % total_cycles)
        for sp in sorted(spans, key=lambda s: (s["tid"], s["start"])):
            lead = int(sp["start"] / total_cycles * width)
            body = max(1, int((sp["end"] - sp["start"])
                              / total_cycles * width))
            body = min(body, width - lead)
            lines.append("  s%-2d %-20s |%s%s%s| %d..%d"
                         % (sp["tid"], sp["name"][:20], " " * lead,
                            "=" * body, " " * (width - lead - body),
                            sp["start"], sp["end"]))

    # Stall attribution (cumulative warp-samples over all sample ticks).
    stall_totals = views.get("stall_totals") or {}
    if stall_totals:
        lines.append("")
        lines.append("stall attribution (sampled warp states):")
        for sid in sorted(stall_totals, key=int):
            reasons = stall_totals[sid]
            total = sum(reasons.values()) or 1
            lines.append("  stream %s (%d stalled warp-samples):"
                         % (sid, total))
            for reason, n in sorted(reasons.items(), key=lambda kv: -kv[1]):
                lines.append("    %-16s %s %5.1f%%"
                             % (reason, _bar(n / total, width // 2),
                                100.0 * n / total))

    # IPC strip chart per stream.
    if ipc_series:
        lines.append("")
        lines.append("IPC per sample interval (max-normalised):")
        for sid in sorted(ipc_series, key=int):
            series = ipc_series[sid]
            peak = max(series) or 1.0
            # Resample to the requested width by bucket-averaging.
            chart = []
            buckets = min(width, len(series))
            for i in range(buckets):
                lo = i * len(series) // buckets
                hi = max(lo + 1, (i + 1) * len(series) // buckets)
                v = sum(series[lo:hi]) / (hi - lo)
                ramp = " .:-=+*#%@"
                chart.append(ramp[min(len(ramp) - 1,
                                      int(v / peak * (len(ramp) - 1)))])
            lines.append("  stream %s |%s| peak %.2f" % (sid, "".join(chart),
                                                         peak))
    reparts = views.get("repartitions") or []
    if reparts:
        lines.append("")
        lines.append("repartition events: %d (%s)"
                     % (len(reparts),
                        ", ".join("@%d" % c for c in reparts[:8])
                        + ("..." if len(reparts) > 8 else "")))
    return "\n".join(lines) + "\n"


def render_telemetry_summary(telemetry_dir: str, width: int = 60) -> str:
    """Render a telemetry directory as a text timeline/flamegraph summary
    (loads, then renders — see the two halves above)."""
    return render_telemetry_views(load_telemetry_views(telemetry_dir),
                                  width=width)


# ---------------------------------------------------------------------------
# QoS report / campaign rendering (repro qos run / repro qos campaign)
# ---------------------------------------------------------------------------

def render_qos_report(report: dict) -> str:
    """Terminal rendering of one QoS run report (runner.run_scenario)."""
    lines: List[str] = []
    scenario = report["scenario"]
    lines.append("qos run: scenario %s  policy %s  seed %s  (%s, %d cycles)"
                 % (scenario["name"], report["policy"], report["seed"],
                    report["config"]["name"], report["total_cycles"]))
    lines.append("  %s" % scenario["description"])
    lines.append("")
    hdr = ("%-10s %4s | %8s %8s %8s %8s | %9s %4s %-4s"
           % ("client", "reqs", "p50", "p95", "p99", "max",
              "budget", "vio", "slo"))
    lines.append("frame time (cycles):")
    lines.append(hdr)
    lines.append("-" * len(hdr))
    for name in sorted(report["clients"]):
        c = report["clients"][name]
        ft = c["frame_time_cycles"]
        slo = c["slo"]
        budget = ("%9d" % slo["budget_cycles"]
                  if slo["budget_cycles"] is not None else "        -")
        verdict = ("met" if slo["met"] else "MISS"
                   ) if slo["budget_cycles"] is not None else "-"
        lines.append("%-10s %4d | %8d %8d %8d %8d | %s %4d %-4s"
                     % (name[:10], c["requests"], ft["p50"], ft["p95"],
                        ft["p99"], ft["max"], budget, slo["violations"],
                        verdict))
    lines.append("")
    lines.append("kernel turnaround (cycles):")
    hdr2 = ("%-10s %8s %8s %8s %8s" % ("client", "p50", "p95", "p99", "max"))
    lines.append(hdr2)
    lines.append("-" * len(hdr2))
    for name in sorted(report["clients"]):
        kt = report["clients"][name]["kernel_turnaround_cycles"]
        lines.append("%-10s %8d %8d %8d %8d"
                     % (name[:10], kt["p50"], kt["p95"], kt["p99"],
                        kt["max"]))
    ctl = report.get("controller")
    if ctl:
        lines.append("")
        lines.append("controller %s: %d interventions, "
                     "final compute shares %s, final L2 shares %s"
                     % (ctl["name"], ctl["interventions"],
                        ctl["final_compute_shares"], ctl["final_l2_shares"]))
        for cycle, decision in ctl["history"][:12]:
            lines.append("  @%-8d %s: stream %s -> stream %s"
                         % (cycle, decision["kind"], decision["from"],
                            decision["to"]))
        if len(ctl["history"]) > 12:
            lines.append("  ... %d more" % (len(ctl["history"]) - 12))
    return "\n".join(lines) + "\n"


def render_qos_campaign(doc: dict) -> str:
    """Terminal rendering of a QoS campaign document (run_campaign)."""
    lines: List[str] = []
    lines.append("qos campaign: seed %s, scenarios %s"
                 % (doc["seed"], ", ".join(doc["scenarios"])))
    lines.append("")
    hdr = ("%-8s %-14s %-6s %6s %10s %12s %5s"
           % ("scenario", "policy", "slo", "worst%", "cycles",
              "p99 (slo cl)", "moves"))
    lines.append(hdr)
    lines.append("-" * len(hdr))
    for row in doc["rows"]:
        if row["status"] != "ok":
            lines.append("%-8s %-14s %s" % (row["scenario"], row["policy"],
                                            "n/a (%s)" % row.get("reason")))
            continue
        slo_p99 = [c["p99_frame_cycles"] for c in row["clients"].values()
                   if c["budget_ms"] is not None]
        lines.append("%-8s %-14s %-6s %5.1f%% %10d %12s %5d"
                     % (row["scenario"], row["policy"],
                        "met" if row["slo_met_all"] else "MISS",
                        100 * row["worst_violation_rate"],
                        row["total_cycles"],
                        "/".join(str(v) for v in slo_p99) or "-",
                        row["interventions"]))
    wins = doc["headline"]["adaptive_wins"]
    lines.append("")
    if wins:
        lines.append("adaptive-only SLO wins (adaptive meets, every "
                     "static misses):")
        for w in wins:
            lines.append("  %s/%s: adaptive p99 %.3fms within %.3fms; "
                         "statics %s"
                         % (w["scenario"], w["client"], w["adaptive_p99_ms"],
                            w["budget_ms"],
                            ", ".join("%s=%.3fms" % kv for kv in
                                      sorted(w["static_p99_ms"].items()))))
    else:
        lines.append("no adaptive-only SLO wins in this campaign")
    return "\n".join(lines) + "\n"
