"""Analytical "silicon" reference model.

The paper validates CRISP against real GPUs (RTX 3070 / Jetson Orin) using
Nsight counters.  No hardware is available offline, so validation figures
correlate the simulator against this analytical stand-in (see DESIGN.md's
substitution table): a roofline model over the *same traces* — issue
throughput per unit class versus DRAM bandwidth over the compulsory
footprint — scaled by a deterministic per-application "driver efficiency"
factor.  The stand-in preserves the paper's qualitative structure:

* the reference is derived independently of the cycle model's scheduling,
  so correlation is informative, not circular;
* the roofline is optimistic, so simulated time is always the longer one
  ("the simulated frame time is always longer than the actual hardware");
* workload scaling (2K -> 4K) carries through the roofline exactly as it
  does on silicon.

For counter-level references (VS invocations, texture transactions) the
reference applies the hardware-side semantics the paper describes: the
profiler counts *threads* while the simulator counts warp-granular
launches, and hardware texture units merge quad-local requests slightly
differently than the approximated-quad model.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence

import numpy as np

from ..config import GPUConfig
from ..graphics.vertex_batch import build_batches, unique_vertex_count
from ..isa import KernelTrace, Space, Unit


def deterministic_factor(key: str, lo: float, hi: float) -> float:
    """A stable pseudo-random factor in [lo, hi], keyed by a string.

    Stands in for per-application hardware idiosyncrasies (driver
    optimisations, fixed-function overlap) that no analytical model
    captures; keyed hashing keeps every run reproducible.
    """
    if hi < lo:
        raise ValueError("hi must be >= lo")
    digest = hashlib.sha256(key.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return lo + (hi - lo) * unit


def reference_vs_invocations(indices: np.ndarray, batch_size: int = 96) -> int:
    """Hardware-profiler VS invocation count for one draw.

    Hardware dedups within batches of ~96 and the profiler reports thread
    counts (not warp-padded), which is the small bottom-left discrepancy
    the paper notes under Fig 3.
    """
    return unique_vertex_count(build_batches(indices, batch_size))


def _unit_pipes(config: GPUConfig) -> Dict[Unit, int]:
    return {
        Unit.FP: config.fp_units,
        Unit.INT: config.int_units,
        Unit.SFU: config.sfu_units,
        Unit.TENSOR: config.tensor_units,
        Unit.MEM: config.ldst_units,
    }


def roofline_cycles(kernels: Sequence[KernelTrace], config: GPUConfig) -> float:
    """Optimistic execution time: issue-throughput vs bandwidth bound."""
    if not kernels:
        raise ValueError("no kernels to model")
    issue: Dict[Unit, int] = {u: 0 for u in Unit}
    lines = set()
    transactions = 0
    for k in kernels:
        for cta in k.ctas:
            for warp in cta.warps:
                for inst in warp:
                    issue[inst.info.unit] += 1
                    if inst.mem is not None and inst.info.space is Space.GLOBAL:
                        lines.update(inst.mem.lines)
                        transactions += len(inst.mem.lines)
    pipes = _unit_pipes(config)
    compute_cycles = max(
        issue[u] / (pipes[u] * config.num_sms) for u in Unit
    )
    # Compulsory DRAM traffic at full bandwidth.
    dram_cycles = len(lines) * config.l2.line_size / config.dram_bytes_per_cycle
    # L2 port bound: every transaction crosses a bank port.
    l2_cycles = transactions * 2.0 / config.l2_banks
    return max(compute_cycles, dram_cycles, l2_cycles)


def reference_frame_cycles(kernels: Sequence[KernelTrace], config: GPUConfig,
                           app_key: str) -> float:
    """Hardware frame time stand-in for Fig 6 (cycles at core clock)."""
    base = roofline_cycles(kernels, config)
    # Hardware lands between its roofline and the (driver-unoptimised)
    # simulator; the per-app factor models driver optimisation quality and
    # fixed-function overlap, keeping the reference strictly the faster one
    # ("the simulated frame time is always longer than the actual
    # hardware", Section VI-A).
    factor = deterministic_factor("frame:" + app_key, 0.55, 0.85)
    launch_overhead = 150.0 + 30.0 * len(kernels)
    return base * factor + launch_overhead


def reference_tex_transactions(draw_key: str, mipmapped_count: int) -> float:
    """Hardware L1 texture transaction count for one drawcall (Fig 9).

    Hardware samples with true quad derivatives and trilinear footprints;
    the reference is therefore the simulator's mipmapped count within a
    modest per-draw factor — while a mip-0-only model overshoots by the
    ratio Fig 9 shows (up to 6x).
    """
    if mipmapped_count < 0:
        raise ValueError("transaction count cannot be negative")
    factor = deterministic_factor("tex:" + draw_key, 0.62, 1.38)
    return max(1.0, mipmapped_count * factor)
