# Developer entry points; CI (.github/workflows/ci.yml) calls these too.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint bench bench-smoke bench-compare bench-parallel \
	test-parallel fuzz fuzz-smoke fuzz-spec check-goldens qos-smoke \
	qos-campaign serve-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m ruff check src tests benchmarks

# The two wall-clock gates: timing-core sim-rate and telemetry overhead.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m bench -s \
		benchmarks/test_timing_simrate.py \
		benchmarks/test_telemetry_overhead.py

# Perf-regression tripwire: measure the reference workload and exit nonzero
# if instr/s drops >30% below the best stored BENCH_timing run with the
# same config fingerprint and label (30% absorbs runner noise; real
# hot-path regressions are 2x+).
bench-compare:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro profile --no-cprofile \
		--repeats 3 --compare benchmarks/BENCH_timing.json \
		--max-regression 30

# Sharded-engine gates: bit-identity across every policy (fast, part of
# tier-1 too) and the serial-vs-workers=4 wall-clock comparison.
test-parallel:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q \
		tests/test_parallel_golden.py tests/test_parallel_plan.py \
		tests/test_api.py

bench-parallel:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -s \
		benchmarks/test_parallel_speedup.py

# Differential fuzzing: every engine must agree bit-for-bit on random
# configs/workloads/policies. `fuzz` is the nightly CI leg (failures land
# in fuzz-corpus/ as minimal shrunk repros); `fuzz-smoke` rides tier-1.
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro validate fuzz \
		--seeds 200 --invariants --corpus fuzz-corpus
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro validate fuzz \
		--seeds 20 --invariants --quiet

# Speculation-stress sweep: every seed runs with horizon 1..3 and the
# forced-rollback injection hook armed; bit-identity must survive
# rollbacks firing orders of magnitude more often than organic traffic.
fuzz-spec:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro validate fuzz \
		--seeds 500 --spec-stress --no-scenes --quiet \
		--corpus fuzz-corpus

check-goldens:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro validate check-goldens

# Open-loop QoS: a short adaptive bursty run (prints the SLO report and
# must rerun bit-identically — the same contract the QoS goldens pin);
# qos-campaign scores adaptive vs every static policy on all scenarios
# and fails unless adaptive wins an SLO no static policy meets.
qos-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro qos run \
		--scenario bursty --clients 3 --seed 7 --requests 4 \
		--out /tmp/qos-smoke
qos-campaign:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro qos campaign \
		--out benchmarks/QOS_campaign.json --require-win

# Simulation-as-a-service smoke: ingest the checked-in benchmark history
# into a scratch repository, start the dashboard on an ephemeral port,
# assert /runs and /compare serve real payloads, then tear down.
serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/serve_smoke.py

# The full figure/table reproduction suite.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q
