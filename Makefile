# Developer entry points; CI (.github/workflows/ci.yml) calls these too.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint bench bench-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m ruff check src tests benchmarks

# The two wall-clock gates: timing-core sim-rate and telemetry overhead.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m bench -s \
		benchmarks/test_timing_simrate.py \
		benchmarks/test_telemetry_overhead.py

# The full figure/table reproduction suite.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q
