"""End-to-end tests for the QoS scenario runner.

One short adaptive run of the steady scenario is shared across the shape
tests; the bit-identity test reruns it and compares the canonical byte
string — the same contract the differential fuzzer's QoS probe enforces.
"""

import json

import pytest

from repro.qos import (canonical_report, qos_policy_names, run_scenario,
                       scenario_names, write_report)

SEED = 11
REQUESTS = 3


@pytest.fixture(scope="module")
def steady_report():
    return run_scenario("steady", SEED, policy="adaptive", requests=REQUESTS)


class TestReportShape:
    def test_envelope(self, steady_report):
        r = steady_report
        assert r["schema"] == 1 and r["kind"] == "qos-report"
        assert r["seed"] == SEED and r["policy"] == "adaptive"
        assert r["scenario"]["name"] == "steady"
        assert r["overrides"]["requests"] == REQUESTS
        assert r["total_cycles"] > 0
        assert r["config"]["fingerprint"]

    def test_per_client_summaries(self, steady_report):
        clients = steady_report["clients"]
        assert len(clients) == 3
        for name, c in clients.items():
            assert c["requests"] == REQUESTS
            assert c["frame_time_cycles"]["count"] == REQUESTS
            assert c["kernel_turnaround_cycles"]["count"] >= REQUESTS
            assert c["instructions"] > 0 and c["ipc"] > 0
            assert 0.0 <= c["mean_occupancy"] <= 1.0
            # Cycle and millisecond trees carry the same percentiles.
            assert set(c["frame_time_ms"]) == \
                set(c["frame_time_cycles"]) - {"count"}

    def test_controller_report_keys(self, steady_report):
        ctl = steady_report["controller"]
        assert ctl["name"] == "hill-climb"
        assert ctl["interventions"] == len(ctl["history"])
        shares = ctl["final_compute_shares"]
        assert all(n >= 1 for n in shares.values())
        assert set(ctl["final_l2_shares"]) == set(shares)

    def test_static_policy_has_no_controller(self):
        r = run_scenario("steady", SEED, policy="mps", requests=2)
        assert r["controller"] is None


class TestDeterminism:
    def test_same_seed_bit_identical(self, steady_report):
        again = run_scenario("steady", SEED, policy="adaptive",
                             requests=REQUESTS)
        assert canonical_report(again) == canonical_report(steady_report)
        assert again["events"] == steady_report["events"]

    def test_canonical_report_strips_events(self, steady_report):
        tree = json.loads(canonical_report(steady_report))
        assert "events" not in tree
        assert tree["schema"] == 1


class TestValidationAndIO:
    def test_unknown_policy_and_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_scenario("steady", SEED, policy="fifo")
        with pytest.raises(KeyError):
            run_scenario("no-such-scenario", SEED)

    def test_warped_slicer_needs_two_clients(self):
        # Every built-in scenario runs >2 clients; Warped-Slicer's pairwise
        # profile search cannot partition them.
        with pytest.raises(ValueError):
            run_scenario("steady", SEED, policy="warped-slicer", requests=2)

    def test_policy_and_scenario_registries(self):
        assert qos_policy_names()[0] == "adaptive"
        assert set(scenario_names()) >= {"steady", "bursty", "ramp", "flood"}

    def test_write_report_round_trips(self, steady_report, tmp_path):
        paths = write_report(steady_report, str(tmp_path))
        with open(paths["report"], "r", encoding="utf-8") as f:
            tree = json.load(f)
        assert "events" not in tree
        assert tree["seed"] == SEED
        with open(paths["events"], "r", encoding="utf-8") as f:
            rows = [json.loads(line) for line in f]
        assert rows == steady_report["events"]
        assert len(rows) >= 3 * REQUESTS
