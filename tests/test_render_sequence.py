"""Tests for swapchain-style multi-frame rendering."""

import math

import numpy as np
import pytest

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import CRISP, GRAPHICS_STREAM
from repro.graphics import Camera, GraphicsPipeline, Texture2D, checkerboard
from repro.graphics.geometry import DrawCall
from repro.scenes.assets import grid_mesh, sphere_mesh
from repro.timing import GPU


def make_pipe():
    return GraphicsPipeline({"tex": Texture2D("tex", checkerboard(64))})


def scene_draws():
    return [DrawCall(grid_mesh(6, 6, extent=6.0), texture_slots=["tex"],
                     name="floor"),
            DrawCall(sphere_mesh(8, 10, radius=1.0, center=(0, 1, 0)),
                     texture_slots=["tex"], name="ball")]


def orbit_cameras(n):
    return [Camera(eye=(5 * math.sin(2 * math.pi * i / max(n, 1)), 2,
                        -5 * math.cos(2 * math.pi * i / max(n, 1))),
                   target=(0, 0.5, 0))
            for i in range(n)]


class TestRenderSequence:
    def test_frames_tagged_and_spanned(self):
        seq = make_pipe().render_sequence(scene_draws(), orbit_cameras(3),
                                          96, 54)
        assert seq.num_frames == 3
        for i in range(3):
            names = seq.frame_kernel_names(i)
            assert names
            assert all(n.startswith("f%d/" % i) for n in names)

    def test_double_buffer_alternates_targets(self):
        seq = make_pipe().render_sequence(scene_draws(), orbit_cameras(2),
                                          96, 54)
        fb0 = seq.frames[0].framebuffer
        fb1 = seq.frames[1].framebuffer
        assert fb0 is not fb1
        assert fb0.color_base != fb1.color_base

    def test_single_buffer_option(self):
        seq = make_pipe().render_sequence(scene_draws(), orbit_cameras(2),
                                          96, 54, double_buffer=False)
        assert seq.frames[0].framebuffer is seq.frames[1].framebuffer

    def test_empty_cameras_rejected(self):
        with pytest.raises(ValueError):
            make_pipe().render_sequence(scene_draws(), [], 96, 54)

    def test_sequence_simulates_with_cross_frame_overlap(self):
        seq = make_pipe().render_sequence(scene_draws(), orbit_cameras(3),
                                          96, 54)
        gpu = GPU(JETSON_ORIN_MINI)
        gpu.add_stream(GRAPHICS_STREAM, seq.kernels)
        stats = gpu.run()
        assert stats.stream(0).kernels_completed == len(seq.kernels)
        tl = gpu.cta_scheduler.streams[GRAPHICS_STREAM].timeline()
        by_name = {name: (s, e) for name, s, e in tl}
        # Frame 1's first vertex kernel starts before frame 0 fully ends.
        f0_end = max(e for n, (s, e) in by_name.items()
                     if n.startswith("f0/"))
        f1_first_start = min(s for n, (s, e) in by_name.items()
                             if n.startswith("f1/"))
        assert f1_first_start < f0_end

    def test_pipelined_beats_serial_frames(self):
        pipe = make_pipe()
        seq = pipe.render_sequence(scene_draws(), orbit_cameras(3), 96, 54)
        gpu = GPU(JETSON_ORIN_MINI)
        gpu.add_stream(GRAPHICS_STREAM, seq.kernels)
        pipelined = gpu.run().cycles

        serial = 0
        pipe2 = make_pipe()
        for cam in orbit_cameras(3):
            frame = pipe2.render_frame(scene_draws(), cam, 96, 54)
            serial += simulate(
                config=JETSON_ORIN_MINI,
                streams={GRAPHICS_STREAM: frame.kernels}).stats.cycles
        assert pipelined < serial

    def test_frame_images_differ(self):
        seq = make_pipe().render_sequence(scene_draws(), orbit_cameras(2),
                                          96, 54)
        img0 = seq.frames[0].framebuffer.as_image()
        img1 = seq.frames[1].framebuffer.as_image()
        assert not np.array_equal(img0, img1)
