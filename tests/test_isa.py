"""Tests for the trace ISA: opcodes, instructions, kernel traces."""

import pytest

from repro.isa import (
    CTAResources,
    CTATrace,
    DataClass,
    KernelTrace,
    MemAccess,
    Op,
    ShaderKind,
    Space,
    Unit,
    WarpInstruction,
    WarpTrace,
    merge_traces,
    op_info,
)


class TestOpcodes:
    def test_every_op_has_info(self):
        for op in Op:
            info = op_info(op)
            assert info.latency >= 1
            assert info.initiation >= 1

    def test_memory_ops_have_spaces(self):
        assert op_info(Op.LDG).space is Space.GLOBAL
        assert op_info(Op.LDS).space is Space.SHARED
        assert op_info(Op.LDC).space is Space.CONST
        assert op_info(Op.TEX).space is Space.GLOBAL  # unified L1 path

    def test_stores_marked(self):
        assert op_info(Op.STG).is_store
        assert op_info(Op.STS).is_store
        assert not op_info(Op.LDG).is_store

    def test_alu_ops_have_no_space(self):
        assert op_info(Op.FFMA).space is Space.NONE

    def test_unit_assignment(self):
        assert op_info(Op.FFMA).unit is Unit.FP
        assert op_info(Op.IMAD).unit is Unit.INT
        assert op_info(Op.MUFU_SIN).unit is Unit.SFU
        assert op_info(Op.HMMA).unit is Unit.TENSOR
        assert op_info(Op.TEX).unit is Unit.MEM

    def test_sfu_has_longer_initiation(self):
        assert op_info(Op.MUFU_RSQ).initiation > op_info(Op.FADD).initiation

    def test_dataclass_graphics_flag(self):
        assert DataClass.TEXTURE.is_graphics
        assert DataClass.PIPELINE.is_graphics
        assert not DataClass.COMPUTE.is_graphics


class TestWarpInstruction:
    def test_info_is_cached(self):
        inst = WarpInstruction(Op.FFMA, dst=3, srcs=(1, 2))
        assert inst.info is op_info(Op.FFMA)

    def test_non_memory_op_rejects_mem(self):
        with pytest.raises(ValueError):
            WarpInstruction(Op.FFMA, mem=MemAccess([0], DataClass.COMPUTE))

    def test_memory_op_carries_lines(self):
        mem = MemAccess([0, 128, 256], DataClass.TEXTURE)
        inst = WarpInstruction(Op.TEX, dst=4, mem=mem)
        assert inst.is_mem
        assert inst.is_global_mem
        assert inst.mem.num_transactions == 3

    def test_mem_access_defaults(self):
        mem = MemAccess([0], DataClass.COMPUTE)
        assert not mem.bypass_l1
        assert mem.num_lanes == 32

    def test_repr_readable(self):
        inst = WarpInstruction(Op.LDG, dst=4, srcs=(1,),
                               mem=MemAccess([128], DataClass.COMPUTE))
        assert "LDG" in repr(inst)


def _kernel(n_ctas=2, warps=2, n_inst=3, **kw):
    ctas = []
    for c in range(n_ctas):
        wts = []
        for w in range(warps):
            wt = WarpTrace([WarpInstruction(Op.FFMA, dst=2, srcs=(1,))
                            for _ in range(n_inst)])
            wt.append(WarpInstruction(Op.EXIT))
            wts.append(wt)
        ctas.append(CTATrace(wts, c))
    return KernelTrace("k", ctas, threads_per_cta=warps * 32, **kw)


class TestKernelTrace:
    def test_counts(self):
        k = _kernel(n_ctas=3, warps=2, n_inst=5)
        assert k.num_ctas == 3
        assert k.warps_per_cta == 2
        assert k.num_instructions == 3 * 2 * 6
        assert k.total_threads == 3 * 64

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KernelTrace("empty", [], threads_per_cta=32)

    def test_cta_trace_rejects_no_warps(self):
        with pytest.raises(ValueError):
            CTATrace([], 0)

    def test_resources(self):
        k = _kernel(regs_per_thread=40, shared_mem_per_cta=1024)
        res = k.cta_resources()
        assert res.threads == 64
        assert res.registers == 40 * 64
        assert res.shared_mem == 1024
        assert res.warps == 2

    def test_resources_fit_check(self):
        res = CTAResources(threads=64, registers=2560, shared_mem=0, warps=2)
        assert res.fits_in(64, 2560, 0, 2)
        assert not res.fits_in(63, 2560, 0, 2)
        assert not res.fits_in(64, 2559, 0, 2)
        assert not res.fits_in(64, 2560, 0, 1)

    def test_instruction_mix(self):
        k = _kernel(n_ctas=1, warps=1, n_inst=4)
        mix = k.instruction_mix()
        assert mix[Op.FFMA] == 4
        assert mix[Op.EXIT] == 1

    def test_memory_footprint_distinct_lines(self):
        wt = WarpTrace([
            WarpInstruction(Op.LDG, dst=4,
                            mem=MemAccess([0, 128], DataClass.COMPUTE)),
            WarpInstruction(Op.LDG, dst=5,
                            mem=MemAccess([128, 256], DataClass.COMPUTE)),
            WarpInstruction(Op.EXIT),
        ])
        k = KernelTrace("m", [CTATrace([wt])], threads_per_cta=32)
        assert k.memory_footprint()[DataClass.COMPUTE] == 3

    def test_uids_unique(self):
        a, b = _kernel(), _kernel()
        assert a.uid != b.uid

    def test_default_depends_on_prev(self):
        assert _kernel().depends_on_prev is True

    def test_kind_tag(self):
        assert _kernel().kind == ShaderKind.COMPUTE

    def test_merge_traces_rejects_duplicates(self):
        k = _kernel()
        with pytest.raises(ValueError):
            merge_traces([k, k])

    def test_merge_traces_preserves_order(self):
        a, b = _kernel(), _kernel()
        assert merge_traces([a, b]) == [a, b]
