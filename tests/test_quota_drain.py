"""Tests for dynamic-quota drain semantics (Section III-A).

"When the partition ratio changes dynamically, on-chip resources must be
reassigned... the CTA scheduler stops issuing CTAs from kernel A and waits
until [enough] CTAs from kernel A commit."  These tests pin that exact
behaviour: shrinking a stream's quota mid-run stops new issues immediately
and the stream drains by attrition, never exceeding the new ceiling once
it has drained below it.
"""

import pytest

from repro.compute import DeviceMemory, KernelBuilder
from repro.config import RTX_3070_MINI
from repro.core import FGDynamicPolicy
from repro.timing import GPU


def long_kernel(name, n_ctas=48, fp=400):
    # 48 CTAs x 4 warps = 192 warps wanted: more than a 0.25 quota
    # (128 warps on the 8-SM mini) can host, so quotas genuinely bind.
    mem = DeviceMemory(region=15)
    buf = mem.buffer(name, 1 << 16)
    return (KernelBuilder(name, n_ctas, 128, regs_per_thread=32)
            .load(buf).fp(fp).store(buf).build())


class ShrinkingPolicy(FGDynamicPolicy):
    """Halves stream 0's quota once, mid-run, and records usage after."""

    name = "shrinking"
    epoch_interval = 400

    def __init__(self):
        super().__init__({0: 0.5, 1: 0.5})
        self.shrunk_at = None
        self.post_shrink_usage = []

    def on_epoch(self, gpu, cycle):
        if self.shrunk_at is None and cycle > 800:
            self.set_fraction(0, 0.25, cycle)
            self.shrunk_at = cycle
        elif self.shrunk_at is not None:
            used = sum(sm.warps_used.get(0, 0) for sm in gpu.sms)
            self.post_shrink_usage.append((cycle, used))


class TestQuotaDrain:
    def test_usage_drains_to_new_quota(self):
        policy = ShrinkingPolicy()
        gpu = GPU(RTX_3070_MINI, policy=policy)
        gpu.add_stream(0, [long_kernel("a") for _ in range(3)])
        gpu.add_stream(1, [long_kernel("b") for _ in range(3)])
        gpu.run()
        assert policy.shrunk_at is not None, "the shrink must have fired"
        assert policy.post_shrink_usage, "need post-shrink samples"
        quota_warps = int(RTX_3070_MINI.max_warps_per_sm * 0.25) \
            * RTX_3070_MINI.num_sms
        # Usage must eventually fall to (and never again exceed) the
        # shrunken ceiling.
        below = [u for _, u in policy.post_shrink_usage if u <= quota_warps]
        assert below, "stream 0 never drained below its new quota"
        first_below = next(i for i, (_, u)
                           in enumerate(policy.post_shrink_usage)
                           if u <= quota_warps)
        tail = policy.post_shrink_usage[first_below:]
        assert all(u <= quota_warps for _, u in tail), \
            "usage rose above the shrunken quota after draining"

    def test_no_preemption(self):
        """Draining is by attrition: total completed CTAs equals the
        launched total (nothing is killed)."""
        policy = ShrinkingPolicy()
        gpu = GPU(RTX_3070_MINI, policy=policy)
        kernels_a = [long_kernel("a") for _ in range(3)]
        kernels_b = [long_kernel("b") for _ in range(3)]
        gpu.add_stream(0, kernels_a)
        gpu.add_stream(1, kernels_b)
        stats = gpu.run()
        assert stats.stream(0).ctas_completed == \
            sum(k.num_ctas for k in kernels_a)
        assert stats.stream(1).ctas_completed == \
            sum(k.num_ctas for k in kernels_b)

    def test_growth_takes_effect(self):
        """Raising a quota lets the stream occupy more than before."""
        class GrowingPolicy(FGDynamicPolicy):
            name = "growing"
            epoch_interval = 300

            def __init__(self):
                super().__init__({0: 0.25, 1: 0.25})
                self.max_seen = 0
                self.grew = False

            def on_epoch(self, gpu, cycle):
                used = sum(sm.warps_used.get(0, 0) for sm in gpu.sms)
                self.max_seen = max(self.max_seen, used)
                if not self.grew and cycle > 600:
                    self.set_fraction(0, 0.75, cycle)
                    self.grew = True

        policy = GrowingPolicy()
        gpu = GPU(RTX_3070_MINI, policy=policy)
        gpu.add_stream(0, [long_kernel("a") for _ in range(4)])
        gpu.add_stream(1, [long_kernel("b")])
        gpu.run()
        quarter = int(RTX_3070_MINI.max_warps_per_sm * 0.25) \
            * RTX_3070_MINI.num_sms
        assert policy.grew
        assert policy.max_seen > quarter, \
            "stream 0 should exceed its original quarter after growth"
