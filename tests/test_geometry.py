"""Tests for meshes, instance sets, and draw-call descriptions."""

import numpy as np
import pytest

from repro.graphics import DrawCall, InstanceSet, Mesh, VERTEX_STRIDE


def quad_arrays():
    positions = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]],
                         dtype=float)
    normals = np.tile([0.0, 0.0, -1.0], (4, 1))
    uvs = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
    indices = np.array([[0, 1, 2], [0, 2, 3]])
    return positions, normals, uvs, indices


class TestMesh:
    def test_valid_mesh(self):
        m = Mesh(*quad_arrays(), name="quad")
        assert m.num_vertices == 4
        assert m.num_triangles == 2
        assert m.vertex_buffer_bytes() == 4 * VERTEX_STRIDE
        assert m.index_buffer_bytes() == 6 * 4

    def test_rejects_bad_positions(self):
        p, n, u, i = quad_arrays()
        with pytest.raises(ValueError, match="positions"):
            Mesh(p[:, :2], n, u, i)

    def test_rejects_mismatched_normals(self):
        p, n, u, i = quad_arrays()
        with pytest.raises(ValueError, match="normals"):
            Mesh(p, n[:3], u, i)

    def test_rejects_mismatched_uvs(self):
        p, n, u, i = quad_arrays()
        with pytest.raises(ValueError, match="uvs"):
            Mesh(p, n, u[:2], i)

    def test_rejects_non_triangle_indices(self):
        p, n, u, i = quad_arrays()
        with pytest.raises(ValueError, match="indices"):
            Mesh(p, n, u, i.ravel())

    def test_rejects_out_of_range_index(self):
        p, n, u, i = quad_arrays()
        bad = i.copy()
        bad[0, 0] = 9
        with pytest.raises(ValueError, match="range"):
            Mesh(p, n, u, bad)

    def test_repr(self):
        assert "quad" in repr(Mesh(*quad_arrays(), name="quad"))


class TestInstanceSet:
    def test_valid(self):
        inst = InstanceSet(np.zeros((3, 3)), np.ones(3),
                           np.array([0, 1, 2]))
        assert inst.count == 3
        assert inst.buffer_bytes() == 3 * 32

    def test_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            InstanceSet(np.zeros((3, 2)), np.ones(3), np.zeros(3))

    def test_rejects_mismatched_scales(self):
        with pytest.raises(ValueError):
            InstanceSet(np.zeros((3, 3)), np.ones(2), np.zeros(3))


class TestDrawCall:
    def test_defaults(self):
        d = DrawCall(Mesh(*quad_arrays(), name="quad"))
        assert d.shader == "basic"
        assert d.instance_count == 1
        assert d.name == "quad"
        assert np.array_equal(d.model, np.eye(4))

    def test_rejects_bad_model(self):
        with pytest.raises(ValueError, match="4x4"):
            DrawCall(Mesh(*quad_arrays()), model=np.eye(3))

    def test_instanced_count(self):
        inst = InstanceSet(np.zeros((5, 3)), np.ones(5), np.zeros(5))
        d = DrawCall(Mesh(*quad_arrays()), instances=inst)
        assert d.instance_count == 5

    def test_custom_name(self):
        d = DrawCall(Mesh(*quad_arrays()), name="custom")
        assert d.name == "custom"
        assert "custom" in repr(d)
