"""Tests for the scene catalog and procedural assets."""

import numpy as np
import pytest

from repro.graphics import GraphicsPipeline
from repro.scenes import (
    RESOLUTIONS,
    Scene,
    build_scene,
    resolution,
    scene_codes,
    scene_title,
)
from repro.scenes import assets


class TestAssets:
    def test_grid_mesh_counts(self):
        m = assets.grid_mesh(4, 3)
        assert m.num_vertices == 5 * 4
        assert m.num_triangles == 4 * 3 * 2

    def test_grid_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            assets.grid_mesh(0, 4)

    def test_box_mesh_shape(self):
        m = assets.box_mesh()
        assert m.num_vertices == 24
        assert m.num_triangles == 12

    def test_sphere_high_reuse(self):
        m = assets.sphere_mesh(8, 12)
        # Indexed mesh: far fewer vertices than 3 * triangles.
        assert m.num_vertices < m.indices.size / 2

    def test_sphere_rejects_degenerate(self):
        with pytest.raises(ValueError):
            assets.sphere_mesh(1, 12)

    def test_sphere_normals_unit(self):
        m = assets.sphere_mesh(6, 8)
        norms = np.linalg.norm(m.normals, axis=1)
        assert np.allclose(norms, 1.0)

    def test_column_mesh(self):
        m = assets.column_mesh(8)
        assert m.num_triangles == 16

    def test_column_rejects_two_sides(self):
        with pytest.raises(ValueError):
            assets.column_mesh(2)

    def test_rock_deterministic(self):
        a = assets.rock_mesh(seed=5)
        b = assets.rock_mesh(seed=5)
        assert np.array_equal(a.positions, b.positions)

    def test_asteroid_field_layers_bounded(self):
        field = assets.asteroid_field(32, num_layers=4)
        assert field.count == 32
        assert field.layers.max() < 4

    def test_pbr_map_set_has_eight(self):
        from repro.graphics.shaders import PBR_MAPS
        maps = assets.pbr_map_set(64)
        assert set(maps) == set(PBR_MAPS)


class TestCatalog:
    def test_codes(self):
        assert set(scene_codes()) == {"SPL", "SPH", "PL", "MT", "PT", "IT"}

    def test_titles(self):
        for code in scene_codes():
            assert scene_title(code)

    def test_unknown_scene(self):
        with pytest.raises(KeyError, match="SPL"):
            build_scene("XYZ")

    def test_resolutions_preserve_4x_ratio(self):
        w2, h2 = resolution("2k")
        w4, h4 = resolution("4k")
        assert w4 * h4 == 4 * w2 * h2

    def test_unknown_resolution(self):
        with pytest.raises(KeyError):
            resolution("8k")

    @pytest.mark.parametrize("code", ["SPL", "SPH", "PL", "MT", "PT", "IT"])
    def test_scene_builds(self, code):
        scene = build_scene(code)
        assert isinstance(scene, Scene)
        assert scene.draws
        assert scene.textures
        assert scene.total_triangles > 0

    def test_sponza_variants_share_geometry(self):
        spl = build_scene("SPL")
        sph = build_scene("SPH")
        assert spl.total_triangles == sph.total_triangles
        assert {d.name for d in spl.draws} == {d.name for d in sph.draws}

    def test_sph_uses_pbr_spl_basic(self):
        assert all(d.shader == "pbr" for d in build_scene("SPH").draws)
        assert all(d.shader == "basic" for d in build_scene("SPL").draws)

    def test_pt_uses_eight_maps(self):
        pt = build_scene("PT")
        assert all(len(d.texture_slots) == 8 for d in pt.draws)

    def test_it_is_instanced(self):
        it = build_scene("IT")
        belt = [d for d in it.draws if d.instances is not None]
        assert belt
        assert belt[0].instance_count > 10

    def test_it_array_texture(self):
        it = build_scene("IT")
        assert it.textures["rock_array"].num_layers > 1

    def test_scene_deterministic(self):
        a = build_scene("PT")
        b = build_scene("PT")
        assert np.array_equal(a.draws[0].mesh.positions,
                              b.draws[0].mesh.positions)


class TestSceneRendering:
    @pytest.mark.parametrize("code", ["SPL", "PT", "IT"])
    def test_renders_nonempty_frame(self, code):
        scene = build_scene(code)
        pipe = GraphicsPipeline(scene.textures)
        w, h = resolution("2k")
        res = pipe.render_frame(scene.draws, scene.camera, w, h)
        assert sum(d.fragments for d in res.draw_stats) > 500
        img = res.framebuffer.as_image()
        assert (img[..., :3].sum(axis=2) > 0).sum() > 500

    def test_render_deterministic(self):
        scene = build_scene("SPL")
        pipe = GraphicsPipeline(scene.textures)
        r1 = pipe.render_frame(scene.draws, scene.camera, 96, 54)
        scene2 = build_scene("SPL")
        pipe2 = GraphicsPipeline(scene2.textures)
        r2 = pipe2.render_frame(scene2.draws, scene2.camera, 96, 54)
        assert r1.total_instructions == r2.total_instructions
        assert np.array_equal(r1.framebuffer.color, r2.framebuffer.color)

    def test_4k_has_more_fragments_than_2k(self):
        scene = build_scene("SPL")
        pipe = GraphicsPipeline(scene.textures)
        w2, h2 = resolution("2k")
        r2 = pipe.render_frame(scene.draws, scene.camera, w2, h2)
        scene4 = build_scene("SPL")
        pipe4 = GraphicsPipeline(scene4.textures)
        w4, h4 = resolution("4k")
        r4 = pipe4.render_frame(scene4.draws, scene4.camera, w4, h4)
        f2 = sum(d.fragments for d in r2.draw_stats)
        f4 = sum(d.fragments for d in r4.draw_stats)
        assert 3.0 < f4 / f2 < 5.0
