"""Tests for the QoS analysis layer."""

import pytest

from repro.analysis.qos import (
    MTP_BUDGET_MS,
    QoSOutcome,
    QoSRequirement,
    all_met,
    cycles_to_ms,
    evaluate,
    summarize_policies,
    worst_slack,
)
from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import COMPUTE_STREAM, CRISP, GRAPHICS_STREAM


class TestRequirement:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            QoSRequirement(0, "render", 0.0)

    def test_outcome_met_and_slack(self):
        req = QoSRequirement(0, "render", deadline_ms=10.0)
        ok = QoSOutcome(req, elapsed_ms=7.0)
        late = QoSOutcome(req, elapsed_ms=12.0)
        assert ok.met and not late.met
        assert ok.slack_ms == pytest.approx(3.0)
        assert late.slack_ms == pytest.approx(-2.0)
        assert ok.utilisation == pytest.approx(0.7)

    def test_mtp_budget_matches_paper(self):
        assert MTP_BUDGET_MS == (15.0, 20.0)


class TestConversions:
    def test_cycles_to_ms(self):
        # 1300 MHz -> 1.3e6 cycles per ms.
        assert cycles_to_ms(1_300_000, JETSON_ORIN_MINI) == pytest.approx(1.0)


class TestEvaluate:
    @pytest.fixture(scope="class")
    def pair_stats(self):
        crisp = CRISP(JETSON_ORIN_MINI)
        frame = crisp.trace_scene("SPL", "2k")
        vio = crisp.trace_compute("VIO")
        return simulate(config=JETSON_ORIN_MINI,
                        streams={GRAPHICS_STREAM: frame.kernels,
                                 COMPUTE_STREAM: vio},
                        policy="fg-even").stats

    def test_generous_deadlines_met(self, pair_stats):
        reqs = [QoSRequirement(GRAPHICS_STREAM, "render", 1000.0),
                QoSRequirement(COMPUTE_STREAM, "vio", 1000.0)]
        outcomes = evaluate(pair_stats, JETSON_ORIN_MINI, reqs)
        assert all_met(outcomes)

    def test_impossible_deadline_missed(self, pair_stats):
        reqs = [QoSRequirement(GRAPHICS_STREAM, "render", 1e-6)]
        outcomes = evaluate(pair_stats, JETSON_ORIN_MINI, reqs)
        assert not outcomes[0].met

    def test_worst_slack_identifies_tightest(self, pair_stats):
        reqs = [QoSRequirement(GRAPHICS_STREAM, "render", 1000.0),
                QoSRequirement(COMPUTE_STREAM, "vio", 0.0001)]
        outcomes = evaluate(pair_stats, JETSON_ORIN_MINI, reqs)
        assert worst_slack(outcomes).requirement.name == "vio"

    def test_empty_requirements_rejected(self, pair_stats):
        with pytest.raises(ValueError):
            evaluate(pair_stats, JETSON_ORIN_MINI, [])

    def test_worst_slack_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_slack([])

    def test_summarize_policies(self, pair_stats):
        reqs = [QoSRequirement(GRAPHICS_STREAM, "render", 1000.0)]
        summary = summarize_policies({"fg-even": pair_stats},
                                     JETSON_ORIN_MINI, reqs)
        assert summary["fg-even"]["all_met"] is True
        assert summary["fg-even"]["worst_stream"] == "render"
