"""GPUStats.to_dict / from_dict round-trip (the campaign cache contract)."""

import json

import pytest

from repro.config import JETSON_ORIN_MINI
from repro.core import COMPUTE_STREAM, CRISP, GRAPHICS_STREAM
from repro.isa import Unit
from repro.timing import GPUStats, OccupancySample, StreamStats


@pytest.fixture(scope="module")
def pair_stats():
    """Stats from a small concurrent run with sampling enabled, so every
    serialized field (streams, occupancy trace, L2 snapshots) is populated."""
    crisp = CRISP(JETSON_ORIN_MINI)
    frame = crisp.trace_scene("SPL", "nano")
    vio = crisp.trace_compute("VIO")
    from repro.api import simulate
    return simulate(
        config=crisp.config,
        streams={GRAPHICS_STREAM: frame.kernels, COMPUTE_STREAM: vio},
        sample_interval=500).stats


class TestGPUStatsRoundTrip:
    def test_json_roundtrip_is_identity(self, pair_stats):
        d = pair_stats.to_dict()
        restored = GPUStats.from_dict(json.loads(json.dumps(d)))
        assert restored.to_dict() == d

    def test_aggregate_views_survive(self, pair_stats):
        restored = GPUStats.from_dict(
            json.loads(json.dumps(pair_stats.to_dict())))
        assert restored.cycles == pair_stats.cycles
        assert restored.total_instructions == pair_stats.total_instructions
        assert restored.summary() == pair_stats.summary()

    def test_per_stream_views_survive(self, pair_stats):
        restored = GPUStats.from_dict(
            json.loads(json.dumps(pair_stats.to_dict())))
        for sid in (GRAPHICS_STREAM, COMPUTE_STREAM):
            assert restored.stream_cycles(sid) == pair_stats.stream_cycles(sid)
            assert restored.stream(sid).ipc == pair_stats.stream(sid).ipc
            assert restored.stream(sid).issue_by_unit == \
                pair_stats.stream(sid).issue_by_unit

    def test_occupancy_trace_survives(self, pair_stats):
        assert pair_stats.occupancy_trace, "fixture must sample occupancy"
        restored = GPUStats.from_dict(
            json.loads(json.dumps(pair_stats.to_dict())))
        assert len(restored.occupancy_trace) == len(pair_stats.occupancy_trace)
        for a, b in zip(restored.occupancy_trace, pair_stats.occupancy_trace):
            assert a.cycle == b.cycle
            assert a.fraction(GRAPHICS_STREAM) == b.fraction(GRAPHICS_STREAM)

    def test_l2_snapshot_keys_restored_as_enums(self, pair_stats):
        restored = GPUStats.from_dict(
            json.loads(json.dumps(pair_stats.to_dict())))
        for (_, by_class), (_, orig) in zip(restored.l2_snapshots,
                                            pair_stats.l2_snapshots):
            assert by_class == dict(orig)

    def test_l2_stream_snapshots_survive(self, pair_stats):
        assert pair_stats.l2_stream_snapshots, \
            "fixture must sample L2 stream composition"
        restored = GPUStats.from_dict(
            json.loads(json.dumps(pair_stats.to_dict())))
        assert len(restored.l2_stream_snapshots) == \
            len(pair_stats.l2_stream_snapshots)
        for (cycle, by_stream), (ocycle, orig) in zip(
                restored.l2_stream_snapshots, pair_stats.l2_stream_snapshots):
            assert cycle == ocycle
            assert by_stream == dict(orig)
            # Stream keys must come back as ints, not the JSON strings.
            assert all(isinstance(sid, int) for sid in by_stream)

    def test_l2_stream_snapshots_roundtrip_synthetic(self):
        stats = GPUStats()
        stats.cycles = 10
        stats.l2_stream_snapshots = [(5, {0: 12, 1: 30}), (10, {1: 42})]
        restored = GPUStats.from_dict(
            json.loads(json.dumps(stats.to_dict())))
        assert restored.l2_stream_snapshots == [(5, {0: 12, 1: 30}),
                                                (10, {1: 42})]


class TestStreamStatsRoundTrip:
    def test_empty_stream(self):
        st = StreamStats(3)
        restored = StreamStats.from_dict(
            json.loads(json.dumps(st.to_dict())))
        assert restored.to_dict() == st.to_dict()
        assert restored.first_issue_cycle is None
        assert restored.busy_cycles == 0

    def test_counters(self):
        st = StreamStats(0)
        st.note_issue(Unit.FP, 10)
        st.note_commit(50)
        restored = StreamStats.from_dict(
            json.loads(json.dumps(st.to_dict())))
        assert restored.instructions == 1
        assert restored.issue_by_unit[Unit.FP] == 1
        assert restored.busy_cycles == 40


class TestOccupancySampleRoundTrip:
    def test_stream_keys_are_ints_again(self):
        s = OccupancySample(120, {0: 8, 1: 24}, 64)
        restored = OccupancySample.from_dict(
            json.loads(json.dumps(s.to_dict())))
        assert restored.warps_by_stream == {0: 8, 1: 24}
        assert restored.fraction(1) == s.fraction(1)
