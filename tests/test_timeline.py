"""Tests for per-kernel timelines and the timeline report."""

import csv

import pytest

from repro.config import JETSON_ORIN_MINI
from repro.core import COMPUTE_STREAM, CRISP, GRAPHICS_STREAM
from repro.harness.report import timeline_rows, write_timeline_report
from repro.timing import GPU


@pytest.fixture(scope="module")
def run():
    crisp = CRISP(JETSON_ORIN_MINI)
    frame = crisp.trace_scene("SPL", "2k")
    vio = crisp.trace_compute("VIO")
    gpu = GPU(JETSON_ORIN_MINI)
    gpu.add_stream(GRAPHICS_STREAM, frame.kernels)
    gpu.add_stream(COMPUTE_STREAM, vio)
    gpu.run()
    return gpu, frame, vio


class TestTimeline:
    def test_every_kernel_has_timeline_entry(self, run):
        gpu, frame, vio = run
        gfx_tl = gpu.cta_scheduler.streams[GRAPHICS_STREAM].timeline()
        cmp_tl = gpu.cta_scheduler.streams[COMPUTE_STREAM].timeline()
        assert len(gfx_tl) == len(frame.kernels)
        assert len(cmp_tl) == len(vio)

    def test_start_before_complete(self, run):
        gpu, _, _ = run
        for sq in gpu.cta_scheduler.streams.values():
            for name, start, end in sq.timeline():
                assert 0 <= start <= end, name

    def test_compute_stream_serialises(self, run):
        """CUDA semantics: kernel k+1 starts at/after kernel k completes."""
        gpu, _, _ = run
        tl = gpu.cta_scheduler.streams[COMPUTE_STREAM].timeline()
        for (_, _, end_prev), (_, start_next, _) in zip(tl, tl[1:]):
            assert start_next >= end_prev

    def test_graphics_stream_overlaps(self, run):
        """ITR pipelining: some vertex kernel starts before the previous
        kernel completes."""
        gpu, _, _ = run
        tl = gpu.cta_scheduler.streams[GRAPHICS_STREAM].timeline()
        overlaps = sum(1 for (_, _, end_prev), (_, start_next, _)
                       in zip(tl, tl[1:]) if start_next < end_prev)
        assert overlaps > 0

    def test_fs_follows_its_vs(self, run):
        gpu, _, _ = run
        tl = gpu.cta_scheduler.streams[GRAPHICS_STREAM].timeline()
        by_name = {}
        for name, start, end in tl:
            by_name[name] = (start, end)
        for name, (start, _) in by_name.items():
            if name.startswith("fs:"):
                vs = by_name.get("vs:" + name[3:])
                if vs:
                    assert start >= vs[1], \
                        "%s started before its vertex kernel finished" % name

    def test_timeline_rows_and_csv(self, run, tmp_path):
        gpu, frame, vio = run
        rows = timeline_rows(gpu)
        assert len(rows) == len(frame.kernels) + len(vio)
        assert all(r["duration"] >= 0 for r in rows)
        path = str(tmp_path / "timeline.csv")
        write_timeline_report(path, gpu)
        with open(path) as f:
            read = list(csv.DictReader(f))
        assert len(read) == len(rows)
