"""Tests for batch-based vertex shading (Fig 3's mechanism)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphics import (
    build_batches,
    total_shader_invocations,
    unique_vertex_count,
)


def strip(n_tris):
    """A triangle strip: tri i = (i, i+1, i+2). High vertex reuse."""
    return np.array([[i, i + 1, i + 2] for i in range(n_tris)])


class TestBuildBatches:
    def test_single_triangle(self):
        b = build_batches(np.array([[0, 1, 2]]))
        assert len(b) == 1
        assert b[0].num_unique == 3
        assert b[0].num_triangles == 1

    def test_dedup_within_batch(self):
        # Two triangles sharing an edge: 4 unique vertices, not 6.
        b = build_batches(np.array([[0, 1, 2], [1, 2, 3]]))
        assert b[0].num_unique == 4

    def test_no_dedup_across_batches(self):
        # Batch size 3 forces one triangle per batch; the shared vertices
        # are shaded twice (the contemporary-GPU behaviour the paper
        # contrasts with Teapot's vertex cache).
        b = build_batches(np.array([[0, 1, 2], [1, 2, 3]]), batch_size=3)
        assert len(b) == 2
        assert unique_vertex_count(b) == 6

    def test_batch_size_respected(self):
        batches = build_batches(strip(100), batch_size=12)
        assert all(b.num_unique <= 12 for b in batches)

    def test_local_indices_reference_unique(self):
        for b in build_batches(strip(50), batch_size=10):
            assert b.local_indices.max() < b.num_unique
            # Local indices reconstruct the original triangles.
            reconstructed = b.unique_vertices[b.local_indices]
            assert reconstructed.shape[1] == 3

    def test_all_triangles_preserved_in_order(self):
        idx = strip(37)
        batches = build_batches(idx, batch_size=9)
        rebuilt = np.concatenate(
            [b.unique_vertices[b.local_indices] for b in batches])
        assert np.array_equal(rebuilt, idx)

    def test_rejects_tiny_batch(self):
        with pytest.raises(ValueError):
            build_batches(strip(2), batch_size=2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            build_batches(np.array([0, 1, 2]))

    def test_empty_indices(self):
        assert build_batches(np.empty((0, 3), dtype=np.int64)) == []

    def test_batch_ids_sequential(self):
        batches = build_batches(strip(60), batch_size=8)
        assert [b.batch_id for b in batches] == list(range(len(batches)))


class TestInvocationCounts:
    def test_warp_padding(self):
        # 4 unique vertices -> one warp of 32 invocations.
        b = build_batches(np.array([[0, 1, 2], [1, 2, 3]]))
        assert total_shader_invocations(b) == 32

    def test_larger_batch_fewer_invocations(self):
        idx = strip(200)
        small = total_shader_invocations(build_batches(idx, batch_size=6))
        big = total_shader_invocations(build_batches(idx, batch_size=96))
        assert big < small

    def test_default_batch_is_96(self):
        from repro.graphics import DEFAULT_BATCH_SIZE
        assert DEFAULT_BATCH_SIZE == 96

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 80), st.integers(3, 96))
    def test_property_counts_bounded(self, n_tris, batch_size):
        idx = strip(n_tris)
        batches = build_batches(idx, batch_size)
        unique = unique_vertex_count(batches)
        # At least the true distinct vertex count, at most 3 per triangle.
        assert len(np.unique(idx)) <= unique <= 3 * n_tris
        # Invocations are warp-padded above the unique count.
        inv = total_shader_invocations(batches)
        assert inv >= unique
        assert inv % 32 == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=3, max_size=120))
    def test_property_triangle_order_preserved(self, flat):
        n = len(flat) // 3 * 3
        idx = np.array(flat[:n]).reshape(-1, 3)
        if len(idx) == 0:
            return
        batches = build_batches(idx, batch_size=7)
        rebuilt = np.concatenate(
            [b.unique_vertices[b.local_indices] for b in batches])
        assert np.array_equal(rebuilt, idx)
