"""Contract tests for the unified ``repro.api`` execution surface.

Pins three things: the public surface itself (names and call signatures,
so accidental breaks show up as a failed snapshot rather than a user bug
report), the deprecation shims (old entry points must warn *and* still
return the exact pre-redesign results), and request resolution semantics
(streams-vs-workload exclusivity, named-policy single-stream behaviour).
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro.api import RunRequest, RunResult, WorkloadSpec, simulate
from repro.config import get_preset
from repro.core.platform import (
    CRISP,
    PairResult,
    collect_streams,
    execute_streams,
    make_policy,
)
from repro.core.streams import COMPUTE_STREAM, GRAPHICS_STREAM


@pytest.fixture(scope="module")
def reference_workload():
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


@pytest.fixture(scope="module")
def baseline(reference_workload):
    """The canonical result every other path must reproduce."""
    config, streams = reference_workload
    return simulate(config=config, streams=streams, policy="mps")


# -- surface snapshot --------------------------------------------------------

def test_package_exports():
    assert set(repro.__all__) == {
        "CRISP", "RunRequest", "RunResult", "WorkloadSpec", "simulate",
        "__version__",
    }
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_simulate_signature():
    params = list(inspect.signature(simulate).parameters)
    assert params == ["request", "kwargs"]


def test_run_request_fields():
    fields = list(inspect.signature(RunRequest).parameters)
    assert fields == [
        "config", "streams", "workload", "policy", "sample_interval",
        "telemetry", "arrivals", "workers", "backend", "max_cycles",
    ]


def test_workload_spec_fields():
    fields = list(inspect.signature(WorkloadSpec).parameters)
    assert fields == [
        "scene", "res", "lod_enabled", "compute", "compute_args",
        "graphics_trace", "compute_trace",
    ]


# -- request resolution ------------------------------------------------------

def test_streams_xor_workload(reference_workload):
    config, streams = reference_workload
    with pytest.raises(ValueError):
        simulate(RunRequest(config=config))
    with pytest.raises(ValueError):
        simulate(RunRequest(config=config, streams=streams,
                            workload=WorkloadSpec(scene="SPL")))


def test_named_policy_skipped_for_single_stream(reference_workload):
    """A *named* policy only applies with >1 stream (execute_streams
    parity); single-stream runs own the whole GPU."""
    config, streams = reference_workload
    solo = {GRAPHICS_STREAM: streams[GRAPHICS_STREAM]}
    result = simulate(config=config, streams=solo, policy="mps")
    assert result.policy is None


def test_policy_instance_always_applies(reference_workload, baseline):
    config, streams = reference_workload
    pol = make_policy("mps", config, sorted(streams))
    result = simulate(config=config, streams=streams, policy=pol)
    assert result.policy is pol
    assert result.stats.to_dict() == baseline.stats.to_dict()


def test_workload_spec_matches_prebuilt_streams(baseline):
    result = simulate(
        workload=WorkloadSpec(scene="SPL", res="nano", compute="HOLO"),
        policy="mps")
    assert result.stats.to_dict() == baseline.stats.to_dict()


def test_result_accessors(baseline):
    r = baseline
    assert r.total_cycles == r.stats.cycles
    assert r.graphics_cycles == r.stats.stream_cycles(GRAPHICS_STREAM)
    assert r.compute_cycles == r.stats.stream_cycles(COMPUTE_STREAM)
    assert r.parallel.requested_workers == 1
    assert not r.parallel.engaged
    assert isinstance(r, RunResult)
    assert "serial" in repr(r)


# -- deprecation shims -------------------------------------------------------

def test_execute_streams_warns_and_matches(reference_workload, baseline):
    config, streams = reference_workload
    with pytest.warns(DeprecationWarning, match="execute_streams"):
        stats, policy = execute_streams(config, streams, policy="mps")
    assert stats.to_dict() == baseline.stats.to_dict()
    assert policy.name == "mps"


def test_crisp_run_pair_warns_and_matches(reference_workload, baseline):
    config, streams = reference_workload
    crisp = CRISP(config)
    with pytest.warns(DeprecationWarning, match="run_pair"):
        pair = crisp.run_pair(streams[GRAPHICS_STREAM],
                              streams[COMPUTE_STREAM], policy="mps")
    assert isinstance(pair, PairResult)
    assert pair.stats.to_dict() == baseline.stats.to_dict()


def test_crisp_run_single_warns(reference_workload):
    config, streams = reference_workload
    crisp = CRISP(config)
    with pytest.warns(DeprecationWarning, match="run_single"):
        stats = crisp.run_single(streams[GRAPHICS_STREAM])
    solo = simulate(config=config,
                    streams={GRAPHICS_STREAM: streams[GRAPHICS_STREAM]})
    assert stats.to_dict() == solo.stats.to_dict()


def test_crisp_run_warns(reference_workload, baseline):
    config, streams = reference_workload
    crisp = CRISP(config)
    pol = make_policy("mps", config, sorted(streams))
    with pytest.warns(DeprecationWarning, match="CRISP.run"):
        stats = crisp.run(streams, policy=pol)
    assert stats.to_dict() == baseline.stats.to_dict()


def test_repro_internals_emit_no_deprecation_warnings(reference_workload):
    """No internal code path still calls the shims above.

    pyproject's filterwarnings escalates the shim messages to errors
    suite-wide; this test additionally pins the contract explicitly, with
    the filters neutralised, so the guarantee survives someone running a
    single file with ``-W ignore``.
    """
    import warnings

    config, streams = reference_workload
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = simulate(config=config, streams=streams, policy="tap",
                          workers=2, backend="inline", sample_interval=500)
        assert result.stats.cycles > 0
    ours = [w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "repro" in (w.filename or "")]
    assert not ours, (
        "repro internals raised DeprecationWarnings: %r"
        % [(w.filename, str(w.message)) for w in ours])
