"""Contract tests for the unified ``repro.api`` execution surface.

Pins three things: the public surface itself (names and call signatures,
so accidental breaks show up as a failed snapshot rather than a user bug
report), the ``execution=`` knob and its deprecation shims (the legacy
``workers=``/``backend=`` keywords must warn *and* fold into an
equivalent :class:`ExecutionPlan`), and request resolution semantics
(streams-vs-workload exclusivity, named-policy single-stream behaviour).
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro.api import (
    ExecutionPlan,
    RunRequest,
    RunResult,
    WorkloadSpec,
    simulate,
)
from repro.config import get_preset
from repro.core.platform import CRISP, collect_streams, make_policy
from repro.core.streams import COMPUTE_STREAM, GRAPHICS_STREAM
from repro.parallel import ShardReport


@pytest.fixture(scope="module")
def reference_workload():
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


@pytest.fixture(scope="module")
def baseline(reference_workload):
    """The canonical result every other path must reproduce."""
    config, streams = reference_workload
    return simulate(config=config, streams=streams, policy="mps")


# -- surface snapshot --------------------------------------------------------

def test_package_exports():
    assert set(repro.__all__) == {
        "CRISP", "ExecutionPlan", "RunRequest", "RunResult", "WorkloadSpec",
        "simulate", "__version__",
    }
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_simulate_signature():
    params = list(inspect.signature(simulate).parameters)
    assert params == ["request", "kwargs"]


def test_run_request_fields():
    fields = list(inspect.signature(RunRequest).parameters)
    assert fields == [
        "config", "streams", "workload", "policy", "sample_interval",
        "telemetry", "arrivals", "execution", "workers", "backend",
        "max_cycles",
    ]


def test_workload_spec_fields():
    fields = list(inspect.signature(WorkloadSpec).parameters)
    assert fields == [
        "scene", "res", "lod_enabled", "compute", "compute_args",
        "graphics_trace", "compute_trace",
    ]


def test_pr4_shims_are_gone():
    """The PR-4 execution shims were removed outright: CRISP is a pure
    tracing facade and the module no longer exports execute_streams."""
    import repro.core.platform as platform
    assert not hasattr(platform, "execute_streams")
    for name in ("run", "run_single", "run_pair"):
        assert not hasattr(CRISP, name)


# -- ExecutionPlan -----------------------------------------------------------

def test_execution_plan_defaults_and_validation():
    plan = ExecutionPlan()
    assert (plan.engine, plan.workers, plan.shard_by, plan.horizon) == \
        ("auto", 1, "auto", None)
    assert not plan.wants_parallel
    assert ExecutionPlan(workers=2).wants_parallel
    assert not ExecutionPlan(engine="serial", workers=8).wants_parallel
    with pytest.raises(ValueError):
        ExecutionPlan(engine="turbo")
    with pytest.raises(ValueError):
        ExecutionPlan(shard_by="kernel")
    with pytest.raises(ValueError):
        ExecutionPlan(workers=0)
    with pytest.raises(ValueError):
        ExecutionPlan(horizon=0)


def test_execution_plan_coercion():
    assert RunRequest(streams={}, execution=None).execution == ExecutionPlan()
    assert RunRequest(streams={}, execution=4).execution == \
        ExecutionPlan(workers=4)
    assert RunRequest(
        streams={}, execution={"engine": "process", "workers": 2}
    ).execution == ExecutionPlan(engine="process", workers=2)
    plan = ExecutionPlan(engine="sharded", workers=2, shard_by="sm")
    assert RunRequest(streams={}, execution=plan).execution is plan
    d = plan.to_dict()
    assert ExecutionPlan.from_dict(d) == plan


def test_execution_plan_runs_sharded(reference_workload, baseline):
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy="mps",
                      execution=ExecutionPlan(engine="sharded", workers=2))
    assert result.execution.engaged
    assert result.execution.num_shards == 2
    assert result.stats.to_dict() == baseline.stats.to_dict()


# -- request resolution ------------------------------------------------------

def test_streams_xor_workload(reference_workload):
    config, streams = reference_workload
    with pytest.raises(ValueError):
        simulate(RunRequest(config=config))
    with pytest.raises(ValueError):
        simulate(RunRequest(config=config, streams=streams,
                            workload=WorkloadSpec(scene="SPL")))


def test_named_policy_skipped_for_single_stream(reference_workload):
    """A *named* policy only applies with >1 stream; single-stream runs
    own the whole GPU."""
    config, streams = reference_workload
    solo = {GRAPHICS_STREAM: streams[GRAPHICS_STREAM]}
    result = simulate(config=config, streams=solo, policy="mps")
    assert result.policy is None


def test_policy_instance_always_applies(reference_workload, baseline):
    config, streams = reference_workload
    pol = make_policy("mps", config, sorted(streams))
    result = simulate(config=config, streams=streams, policy=pol)
    assert result.policy is pol
    assert result.stats.to_dict() == baseline.stats.to_dict()


def test_workload_spec_matches_prebuilt_streams(baseline):
    result = simulate(
        workload=WorkloadSpec(scene="SPL", res="nano", compute="HOLO"),
        policy="mps")
    assert result.stats.to_dict() == baseline.stats.to_dict()


def test_result_accessors(baseline):
    r = baseline
    assert r.total_cycles == r.stats.cycles
    assert r.graphics_cycles == r.stats.stream_cycles(GRAPHICS_STREAM)
    assert r.compute_cycles == r.stats.stream_cycles(COMPUTE_STREAM)
    assert isinstance(r.execution, ShardReport)
    assert r.execution.requested_workers == 1
    assert not r.execution.engaged
    assert r.execution.refusal is not None
    assert r.execution.refusal.code == "workers-not-parallel"
    assert r.parallel is r.execution  # deprecated alias
    assert isinstance(r, RunResult)
    assert "serial" in repr(r)


def test_to_record_carries_execution(baseline):
    record = baseline.to_record(label="t")
    assert record["extras"]["parallel_engaged"] is False
    assert record["extras"]["execution"]["execution"]["workers"] == 1


# -- deprecation shims -------------------------------------------------------

def test_workers_kwarg_warns_and_folds(reference_workload, baseline):
    config, streams = reference_workload
    with pytest.warns(DeprecationWarning, match="workers"):
        request = RunRequest(config=config, streams=streams, policy="mps",
                             workers=2, backend="inline")
    assert request.execution == ExecutionPlan(engine="sharded", workers=2)
    assert request.workers is None and request.backend is None
    result = simulate(request)
    assert result.execution.engaged
    assert result.stats.to_dict() == baseline.stats.to_dict()


def test_workers_and_execution_conflict(reference_workload):
    config, streams = reference_workload
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="not both"):
            RunRequest(config=config, streams=streams,
                       execution=ExecutionPlan(workers=2), workers=2)


def test_repro_internals_emit_no_deprecation_warnings(reference_workload):
    """No internal code path still uses the ``workers=`` shim.

    pyproject's filterwarnings escalates the shim messages to errors
    suite-wide; this test additionally pins the contract explicitly, with
    the filters neutralised, so the guarantee survives someone running a
    single file with ``-W ignore``.
    """
    import warnings

    config, streams = reference_workload
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = simulate(config=config, streams=streams, policy="tap",
                          execution=ExecutionPlan(engine="sharded",
                                                  workers=2),
                          sample_interval=500)
        assert result.stats.cycles > 0
    ours = [w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "repro" in (w.filename or "")]
    assert not ours, (
        "repro internals raised DeprecationWarnings: %r"
        % [(w.filename, str(w.message)) for w in ours])
