"""Integration tests: the full platform end to end.

These exercise the paper's headline capability — rendering and CUDA kernels
executing concurrently on one GPU model under every partition policy — plus
small versions of the case-study experiments.
"""

import numpy as np
import pytest

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI, RTX_3070_MINI
from repro.core import (
    COMPUTE_STREAM,
    CRISP,
    GRAPHICS_STREAM,
    POLICY_NAMES,
    make_policy,
)
from repro.core.platform import PairResult
from repro.isa import DataClass, ShaderKind
from repro.timing import GPU


def run_pair(crisp, graphics, compute, policy):
    """The old CRISP.run_pair convenience, expressed via repro.api."""
    streams = {GRAPHICS_STREAM: list(graphics), COMPUTE_STREAM: list(compute)}
    pol = make_policy(policy, crisp.config, sorted(streams))
    return PairResult(
        simulate(config=crisp.config, streams=streams, policy=pol).stats, pol)


def run_single(crisp, kernels):
    return simulate(config=crisp.config,
                    streams={GRAPHICS_STREAM: list(kernels)}).stats


@pytest.fixture(scope="module")
def crisp():
    return CRISP(JETSON_ORIN_MINI)


@pytest.fixture(scope="module")
def spl_frame(crisp):
    return crisp.trace_scene("SPL", "2k")


@pytest.fixture(scope="module")
def vio_kernels(crisp):
    return crisp.trace_compute("VIO")


class TestPlatformFacade:
    def test_trace_scene_kinds(self, spl_frame):
        kinds = {k.kind for k in spl_frame.kernels}
        assert kinds == {ShaderKind.VERTEX, ShaderKind.FRAGMENT}

    def test_run_single(self, crisp, spl_frame):
        stats = run_single(crisp, spl_frame.kernels)
        assert stats.cycles > 0
        assert stats.stream(GRAPHICS_STREAM).instructions == \
            sum(k.num_instructions for k in spl_frame.kernels)

    def test_policy_factory_covers_all_names(self):
        for name in POLICY_NAMES:
            pol = make_policy(name, JETSON_ORIN_MINI, [0, 1])
            assert pol.name == name or name == "shared"

    def test_policy_factory_unknown(self):
        with pytest.raises(KeyError):
            make_policy("bogus", JETSON_ORIN_MINI, [0, 1])

    @pytest.mark.parametrize("policy", ["mps", "mig", "fg-even",
                                        "warped-slicer", "tap"])
    def test_concurrent_pair_completes_under_every_policy(
            self, crisp, spl_frame, vio_kernels, policy):
        result = run_pair(crisp, spl_frame.kernels, vio_kernels, policy)
        gfx = result.stats.stream(GRAPHICS_STREAM)
        cmp_ = result.stats.stream(COMPUTE_STREAM)
        assert gfx.kernels_completed == len(spl_frame.kernels)
        assert cmp_.kernels_completed == len(vio_kernels)
        assert result.graphics_cycles > 0
        assert result.compute_cycles > 0

    def test_concurrent_execution_overlaps(self, crisp, spl_frame, vio_kernels):
        """Both streams make progress in the same cycle span (the paper's
        core capability)."""
        result = run_pair(crisp, spl_frame.kernels, vio_kernels, "mps")
        gfx = result.stats.stream(GRAPHICS_STREAM)
        cmp_ = result.stats.stream(COMPUTE_STREAM)
        overlap_start = max(gfx.first_issue_cycle, cmp_.first_issue_cycle)
        overlap_end = min(gfx.last_commit_cycle, cmp_.last_commit_cycle)
        assert overlap_end > overlap_start

    def test_concurrent_slower_than_isolated(self, crisp, spl_frame,
                                             vio_kernels):
        iso = run_single(crisp, spl_frame.kernels).cycles
        pair = run_pair(crisp, spl_frame.kernels, vio_kernels, "mps")
        assert pair.total_cycles > iso * 0.8  # sharing cannot be free

    def test_mig_limits_l2_banks(self, crisp, spl_frame, vio_kernels):
        streams = {GRAPHICS_STREAM: spl_frame.kernels,
                   COMPUTE_STREAM: vio_kernels}
        pol = make_policy("mig", JETSON_ORIN_MINI, [0, 1])
        gpu = GPU(JETSON_ORIN_MINI, policy=pol)
        for sid, ks in sorted(streams.items()):
            gpu.add_stream(sid, ks)
        gpu.run()
        by_stream = {}
        for b_idx, bank in enumerate(gpu.l2.banks):
            for stream, st in bank.stats.items():
                if st.accesses:
                    by_stream.setdefault(stream, set()).add(b_idx)
        assert by_stream[GRAPHICS_STREAM].isdisjoint(by_stream[COMPUTE_STREAM])

    def test_lod_toggle_through_facade(self, crisp):
        on = crisp.trace_scene("SPL", "2k", lod_enabled=True)
        off = crisp.trace_scene("SPL", "2k", lod_enabled=False)
        assert off.tex_transactions > on.tex_transactions

    def test_l2_composition_tagged_during_run(self, crisp, spl_frame):
        gpu = GPU(JETSON_ORIN_MINI, sample_interval=500)
        gpu.add_stream(GRAPHICS_STREAM, spl_frame.kernels)
        stats = gpu.run()
        classes = set()
        for _, comp in stats.l2_snapshots:
            classes.update(comp)
        assert DataClass.TEXTURE in classes
        assert DataClass.PIPELINE in classes


class TestExperimentRunnersSmall:
    """Small-parameter versions of the figure runners (full versions are
    the benchmarks)."""

    def test_fig3_small(self):
        from repro.harness.experiments import run_fig3
        r = run_fig3(batch_sizes=(8, 96), codes=("SPL",))
        assert r.correlation_by_batch[96] > r.correlation_by_batch[8]

    def test_fig6_small(self):
        from repro.harness.experiments import run_fig6
        r = run_fig6(codes=("PT",), resolutions=("2k",))
        sim = r.rows[0][2]
        ref = r.rows[0][3]
        assert sim >= ref

    def test_fig7(self):
        from repro.harness.experiments import run_fig7
        r = run_fig7()
        assert r.loads_level0 == 4
        assert r.loads_level1 == 1

    def test_fig9_small(self):
        from repro.harness.experiments import run_fig9
        r = run_fig9(codes=("PT",))
        assert r.mape_lod_off > r.mape_lod_on

    def test_fig10_small(self):
        from repro.harness.experiments import run_fig10
        r = run_fig10("SPL")
        assert r.lines_per_cta
        assert r.mode >= 1

    def test_fig11_small(self):
        from repro.harness.experiments import run_fig11
        r = run_fig11(codes=("PT", "SPL"), config=JETSON_ORIN_MINI)
        assert r.texture_share["PT"] > r.texture_share["SPL"]

    def test_policy_comparison_small(self):
        from repro.harness.experiments import run_policy_comparison
        r = run_policy_comparison(("mps", "fg-even"), JETSON_ORIN_MINI,
                                  scenes=("SPL",), compute=("VIO",),
                                  res="2k")
        norm = r.normalized()
        assert set(norm) == {"SPL+VIO"}
        assert norm["SPL+VIO"]["mps"] == 1.0

    def test_fig13_small(self):
        from repro.harness.experiments import run_fig13
        r = run_fig13("SPL", "VIO", res="2k")
        assert r.samples_taken > 0
        assert r.occupancy

    def test_fig15_small(self):
        from repro.harness.experiments import run_fig15
        r = run_fig15("SPL", "HOLO", config=JETSON_ORIN_MINI)
        assert r.mean_graphics_share > r.mean_compute_share

    def test_table2(self):
        from repro.harness.experiments import run_table2
        t = run_table2()
        assert set(t) == {"JetsonOrin", "RTX3070"}
