"""Tests for warp state, schedulers, and execution-unit pipes."""

import pytest

from repro.isa import (
    CTATrace,
    DataClass,
    KernelTrace,
    MemAccess,
    Op,
    Unit,
    WarpInstruction,
    WarpTrace,
)
from repro.timing import BLOCKED, GTOScheduler, SchedulerUnits, UnitPipe, WarpContext


class _FakeCTA:
    """Stand-in resident CTA for warp-level unit tests."""


def make_warp(instrs, warp_id=0):
    return WarpContext(WarpTrace(list(instrs)), stream=0, cta=_FakeCTA(),
                       warp_id=warp_id)


class TestUnitPipe:
    def test_pipelined_issue(self):
        p = UnitPipe(Unit.FP)
        assert p.issue(0, initiation=1) == 0
        assert p.issue(0, initiation=1) == 1  # next cycle, II=1

    def test_initiation_interval_blocks(self):
        p = UnitPipe(Unit.SFU)
        assert p.issue(0, initiation=4) == 0
        assert p.issue(1, initiation=4) == 4

    def test_earliest_issue(self):
        p = UnitPipe(Unit.FP)
        p.issue(5, initiation=3)
        assert p.earliest_issue(5) == 8
        assert p.earliest_issue(20) == 20


class TestWarpContext:
    def test_empty_trace_is_done(self):
        w = make_warp([])
        assert w.done
        assert w.peek() is None

    def test_dependency_blocks_until_writeback(self):
        w = make_warp([
            WarpInstruction(Op.LDG, dst=4, mem=MemAccess([0], DataClass.COMPUTE)),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
        ])
        inst = w.peek()
        w.commit_issue(inst, issue_cycle=0, complete_cycle=300)
        assert w.dep_ready_cycle() == 300

    def test_waw_hazard_checked(self):
        w = make_warp([
            WarpInstruction(Op.FFMA, dst=4, srcs=(1,)),
            WarpInstruction(Op.FFMA, dst=4, srcs=(2,)),
        ])
        w.commit_issue(w.peek(), 0, 4)
        assert w.dep_ready_cycle() == 4

    def test_independent_instruction_ready_immediately(self):
        w = make_warp([
            WarpInstruction(Op.FFMA, dst=4, srcs=(1,)),
            WarpInstruction(Op.FFMA, dst=8, srcs=(2,)),
        ])
        w.commit_issue(w.peek(), 0, 4)
        assert w.dep_ready_cycle() == 0

    def test_stall_until_enforced(self):
        w = make_warp([WarpInstruction(Op.FFMA, dst=4)])
        w.stall_until = 77
        assert w.dep_ready_cycle() == 77

    def test_barrier_wait_blocks(self):
        w = make_warp([WarpInstruction(Op.FFMA, dst=4)])
        w.barrier_wait = True
        assert w.dep_ready_cycle() == BLOCKED

    def test_done_after_last_instruction(self):
        w = make_warp([WarpInstruction(Op.EXIT)])
        w.commit_issue(w.peek(), 0, 1)
        assert w.done


class TestGTOScheduler:
    """Slot-based scheduler API: warps share the scheduler's SlotState,
    ``pick`` returns the chosen warp slot (-1 when stalled)."""

    def make(self):
        return GTOScheduler(0, SchedulerUnits())

    def add(self, s, instrs, warp_id=0):
        w = WarpContext(WarpTrace(list(instrs)), stream=0, cta=_FakeCTA(),
                        warp_id=warp_id, state=s.state)
        s.add_warp(w)
        return w

    def test_pick_returns_ready_warp(self):
        s = self.make()
        w = self.add(s, [WarpInstruction(Op.FFMA, dst=4)])
        assert s.pick(0) == w.slot

    def test_pick_negative_when_empty(self):
        assert self.make().pick(0) == -1

    def test_greedy_prefers_last_issued(self):
        s = self.make()
        a = self.add(s, [WarpInstruction(Op.FFMA, dst=4)] * 3, warp_id=0)
        b = self.add(s, [WarpInstruction(Op.FFMA, dst=4)] * 3, warp_id=1)
        slot = s.pick(0)
        w = s.state.warps[slot]
        w.commit_issue(w.peek(), 0, 4)
        s.note_issued(slot, 1)
        # Same warp is preferred while ready (greedy). Use a later cycle so
        # the WAW hazard is resolved.
        assert s.pick(8) == slot
        assert slot in (a.slot, b.slot)

    def test_oldest_selected_when_greedy_stalled(self):
        s = self.make()
        a = self.add(s, [
            WarpInstruction(Op.FFMA, dst=4),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
        ], warp_id=0)
        b = self.add(s, [WarpInstruction(Op.FFMA, dst=4)], warp_id=1)
        slot = s.pick(0)
        assert slot == a.slot  # oldest first
        a.commit_issue(a.peek(), 0, 4)
        s.note_issued(slot, 4)
        # a now stalls on its dependency until cycle 4 -> b is picked.
        assert s.pick(1) == b.slot

    def test_done_warps_dropped(self):
        s = self.make()
        w = self.add(s, [WarpInstruction(Op.EXIT)])
        slot = s.pick(0)
        w.commit_issue(w.peek(), 0, 1)
        s.note_issued(slot, 1)
        assert s.pick(1) == -1
        assert s.next_event(1) == BLOCKED

    def test_next_event_reports_dependency_time(self):
        s = self.make()
        w = self.add(s, [
            WarpInstruction(Op.LDG, dst=4, mem=MemAccess([0], DataClass.COMPUTE)),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
        ])
        slot = s.pick(0)
        w.commit_issue(w.peek(), 0, 250)
        s.note_issued(slot, 250)
        assert s.next_event(1) == 250

    def test_wake_requeues_parked_warp(self):
        s = self.make()
        w = self.add(s, [WarpInstruction(Op.FFMA, dst=4)])
        w.barrier_wait = True
        assert s.pick(0) == -1  # parked entry dropped
        w.barrier_wait = False
        s.wake(w, 5)
        assert s.pick(5) == w.slot


class TestLRRWrapAround:
    """Round-robin priority must wrap past the hard-coded 4096-id modulo:
    after warp id 4095 issues, id 0 is "next", and ids just above the last
    issued id always beat ids far below it."""

    def make(self):
        return GTOScheduler(0, SchedulerUnits(), policy="lrr")

    def add(self, s, n_instrs, warp_id):
        w = WarpContext(
            WarpTrace([WarpInstruction(Op.FFMA, dst=8 + i)
                       for i in range(n_instrs)]),
            stream=0, cta=_FakeCTA(), warp_id=warp_id, state=s.state)
        s.add_warp(w)
        return w

    def issue(self, s, cycle):
        slot = s.pick(cycle)
        assert slot >= 0
        w = s.state.warps[slot]
        w.commit_issue(w.peek(), cycle, cycle + 1)
        s.note_issued(slot, cycle + 1)
        return w

    def test_id_above_last_beats_id_below(self):
        s = self.make()
        seed = self.add(s, 1, warp_id=4094)  # one instr: sets last, then done
        assert self.issue(s, 0) is seed
        lo = self.add(s, 2, warp_id=0)
        hi = self.add(s, 2, warp_id=4095)
        # last issued id is 4094: id 4095 (distance 0 mod 4096) must beat
        # id 0 (distance 1 mod 4096).  An unwrapped comparison would pick 0.
        assert self.issue(s, 1) is hi

    def test_wraps_from_4095_to_zero(self):
        s = self.make()
        seed = self.add(s, 1, warp_id=4095)
        assert self.issue(s, 0) is seed
        a = self.add(s, 2, warp_id=0)
        b = self.add(s, 2, warp_id=1)
        # last = 4095 == modulo boundary: round robin restarts at id 0.
        assert self.issue(s, 1) is a
        assert self.issue(s, 2) is b

    def test_full_rotation_across_boundary(self):
        s = self.make()
        warps = [self.add(s, 4, warp_id=wid) for wid in (4093, 4095, 2)]
        order = [self.issue(s, cycle).warp_id for cycle in range(6)]
        # First lap starts from the lowest id (nothing issued yet), then
        # rotation proceeds ascending-from-last, wrapping 4095 -> 2.
        assert order == [2, 4093, 4095, 2, 4093, 4095]
        assert len(warps) == 3


class TestBarrierWakeOrdering:
    """Parked warps re-enter the issue queue via wake(); order and timing
    must follow (release cycle, wake call order) under the flat-state
    bucket queue exactly as they did under the heap."""

    def make(self):
        return GTOScheduler(0, SchedulerUnits())

    def add(self, s, warp_id=0, n_instrs=1):
        w = WarpContext(
            WarpTrace([WarpInstruction(Op.FFMA, dst=8 + i)
                       for i in range(n_instrs)]),
            stream=0, cta=_FakeCTA(), warp_id=warp_id, state=s.state)
        s.add_warp(w)
        return w

    def park(self, w):
        w.barrier_wait = True

    def issue(self, s, cycle):
        slot = s.pick(cycle)
        assert slot >= 0
        w = s.state.warps[slot]
        w.commit_issue(w.peek(), cycle, cycle + 1)
        s.note_issued(slot, cycle + 1)
        return w

    def test_wake_fifo_within_release_cycle(self):
        s = self.make()
        w0, w1, w2 = (self.add(s, warp_id=i) for i in range(3))
        for w in (w0, w1, w2):
            self.park(w)
        assert s.pick(0) == -1
        # Wake out of slot order: FIFO must follow wake() call order.
        for w in (w2, w0, w1):
            w.barrier_wait = False
            s.wake(w, 5)
        assert s.pick(4) == -1  # release cycle not reached
        assert self.issue(s, 5) is w2
        assert self.issue(s, 5) is w0
        assert self.issue(s, 5) is w1

    def test_wake_respects_release_cycles(self):
        s = self.make()
        early = self.add(s, warp_id=0)
        late = self.add(s, warp_id=1)
        self.park(early)
        self.park(late)
        # Mirror SM._barrier's release: fold the release cycle into the
        # warp's stall (the flat next_ready array) before re-queueing it.
        late.barrier_wait = False
        late.stall_until = 9
        s.wake(late, 9)
        early.barrier_wait = False
        early.stall_until = 3
        s.wake(early, 3)
        # Earlier release wins even though it was woken second.
        assert self.issue(s, 3) is early
        assert s.pick(4) == -1
        assert s.next_event(4) == 9
        assert self.issue(s, 9) is late

    def test_wake_folds_with_stall_until(self):
        s = self.make()
        w = self.add(s)
        self.park(w)
        w.barrier_wait = False
        w.stall_until = 7  # scoreboard-side stall outlives the barrier
        s.wake(w, 5)
        # The cycle-5 entry is stale-low: pick re-validates against the
        # flat next_ready array and re-queues at the corrected cycle.
        assert s.pick(5) == -1
        assert s.pick(6) == -1
        assert s.pick(7) == w.slot

    def test_wake_while_still_parked_stays_parked(self):
        s = self.make()
        w = self.add(s)
        self.park(w)
        s.wake(w, 2)  # spurious wake: barrier flag still set
        assert s.pick(2) == -1
        assert s.next_event(2) == BLOCKED
        w.barrier_wait = False
        s.wake(w, 4)
        assert s.pick(4) == w.slot
