"""Tests for warp state, schedulers, and execution-unit pipes."""

import pytest

from repro.isa import (
    CTATrace,
    DataClass,
    KernelTrace,
    MemAccess,
    Op,
    Unit,
    WarpInstruction,
    WarpTrace,
)
from repro.timing import BLOCKED, GTOScheduler, SchedulerUnits, UnitPipe, WarpContext


class _FakeCTA:
    """Stand-in resident CTA for warp-level unit tests."""


def make_warp(instrs, warp_id=0):
    return WarpContext(WarpTrace(list(instrs)), stream=0, cta=_FakeCTA(),
                       warp_id=warp_id)


class TestUnitPipe:
    def test_pipelined_issue(self):
        p = UnitPipe(Unit.FP)
        assert p.issue(0, initiation=1) == 0
        assert p.issue(0, initiation=1) == 1  # next cycle, II=1

    def test_initiation_interval_blocks(self):
        p = UnitPipe(Unit.SFU)
        assert p.issue(0, initiation=4) == 0
        assert p.issue(1, initiation=4) == 4

    def test_earliest_issue(self):
        p = UnitPipe(Unit.FP)
        p.issue(5, initiation=3)
        assert p.earliest_issue(5) == 8
        assert p.earliest_issue(20) == 20


class TestWarpContext:
    def test_empty_trace_is_done(self):
        w = make_warp([])
        assert w.done
        assert w.peek() is None

    def test_dependency_blocks_until_writeback(self):
        w = make_warp([
            WarpInstruction(Op.LDG, dst=4, mem=MemAccess([0], DataClass.COMPUTE)),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
        ])
        inst = w.peek()
        w.commit_issue(inst, issue_cycle=0, complete_cycle=300)
        assert w.dep_ready_cycle() == 300

    def test_waw_hazard_checked(self):
        w = make_warp([
            WarpInstruction(Op.FFMA, dst=4, srcs=(1,)),
            WarpInstruction(Op.FFMA, dst=4, srcs=(2,)),
        ])
        w.commit_issue(w.peek(), 0, 4)
        assert w.dep_ready_cycle() == 4

    def test_independent_instruction_ready_immediately(self):
        w = make_warp([
            WarpInstruction(Op.FFMA, dst=4, srcs=(1,)),
            WarpInstruction(Op.FFMA, dst=8, srcs=(2,)),
        ])
        w.commit_issue(w.peek(), 0, 4)
        assert w.dep_ready_cycle() == 0

    def test_stall_until_enforced(self):
        w = make_warp([WarpInstruction(Op.FFMA, dst=4)])
        w.stall_until = 77
        assert w.dep_ready_cycle() == 77

    def test_barrier_wait_blocks(self):
        w = make_warp([WarpInstruction(Op.FFMA, dst=4)])
        w.barrier_wait = True
        assert w.dep_ready_cycle() == BLOCKED

    def test_done_after_last_instruction(self):
        w = make_warp([WarpInstruction(Op.EXIT)])
        w.commit_issue(w.peek(), 0, 1)
        assert w.done


class TestGTOScheduler:
    def make(self):
        return GTOScheduler(0, SchedulerUnits())

    def test_pick_returns_ready_warp(self):
        s = self.make()
        w = make_warp([WarpInstruction(Op.FFMA, dst=4)])
        s.add_warp(w)
        picked = s.pick(0)
        assert picked is not None
        assert picked[0] is w

    def test_pick_none_when_empty(self):
        assert self.make().pick(0) is None

    def test_greedy_prefers_last_issued(self):
        s = self.make()
        a = make_warp([WarpInstruction(Op.FFMA, dst=4)] * 3, warp_id=0)
        b = make_warp([WarpInstruction(Op.FFMA, dst=4)] * 3, warp_id=1)
        s.add_warp(a)
        s.add_warp(b)
        w, inst = s.pick(0)
        w.commit_issue(inst, 0, 4)
        s.note_issued(w, 1.0)
        # Same warp is preferred while ready (greedy). Use a later cycle so
        # the WAW hazard is resolved.
        w2, _ = s.pick(8)
        assert w2 is w

    def test_oldest_selected_when_greedy_stalled(self):
        s = self.make()
        a = make_warp([
            WarpInstruction(Op.FFMA, dst=4),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
        ], warp_id=0)
        b = make_warp([WarpInstruction(Op.FFMA, dst=4)], warp_id=1)
        s.add_warp(a)
        s.add_warp(b)
        w, inst = s.pick(0)
        assert w is a  # oldest first
        w.commit_issue(inst, 0, 4)
        s.note_issued(w, 4.0)
        # a now stalls on its dependency until cycle 4 -> b is picked.
        w2, _ = s.pick(1)
        assert w2 is b

    def test_done_warps_dropped(self):
        s = self.make()
        w = make_warp([WarpInstruction(Op.EXIT)])
        s.add_warp(w)
        picked = s.pick(0)
        w.commit_issue(picked[1], 0, 1)
        s.note_issued(w, 1.0)
        assert s.pick(1) is None
        assert s.next_event(1) == BLOCKED

    def test_next_event_reports_dependency_time(self):
        s = self.make()
        w = make_warp([
            WarpInstruction(Op.LDG, dst=4, mem=MemAccess([0], DataClass.COMPUTE)),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
        ])
        s.add_warp(w)
        picked = s.pick(0)
        w.commit_issue(picked[1], 0, 250)
        s.note_issued(w, 250.0)
        assert s.next_event(1) == 250.0

    def test_wake_requeues_parked_warp(self):
        s = self.make()
        w = make_warp([WarpInstruction(Op.FFMA, dst=4)])
        s.add_warp(w)
        w.barrier_wait = True
        assert s.pick(0) is None  # parked entry dropped
        w.barrier_wait = False
        s.wake(w, 5.0)
        assert s.pick(5) is not None
