"""Fuzzer determinism, the differential oracle, and the shrinker.

The oracle's promise: any fuzzed case runs bit-identically on every
execution engine, and when an engine diverges the failure arrives as a
*minimal* repro.  We pin:

* seed determinism (a CI failure reproduces locally from the seed alone);
* a small clean sweep (tier-1 smoke — CI runs the 200-seed version);
* the shrinker actually shrinking an injected engine regression;
* the EpochUnsafeError path: a shard that bails mid-flight is redone
  serially with bit-identical stats and the report says why.
"""

import pytest

from repro.api import simulate
from repro.compute import DeviceMemory, KernelBuilder
from repro.config import get_preset
from repro.validate import build_case, check_case, run_fuzz, shrink_case
from repro.validate.differential import (
    canonical,
    engines_for,
    first_difference,
    run_case,
)


class TestFuzzerDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_same_seed_same_case(self, seed):
        a = build_case(seed, allow_scenes=False)
        b = build_case(seed, allow_scenes=False)
        assert a.descr == b.descr
        assert a.total_instructions == b.total_instructions
        assert sorted(a.streams) == sorted(b.streams)

    def test_same_seed_same_stats(self):
        case = build_case(11, allow_scenes=False)
        again = build_case(11, allow_scenes=False)
        assert first_difference(canonical(run_case(case, "serial").stats),
                                canonical(run_case(again, "serial").stats)) \
            is None

    def test_cases_are_small(self):
        """The 200-seed CI sweep only fits if cases stay tiny."""
        for seed in range(10):
            case = build_case(seed, allow_scenes=False)
            assert case.total_instructions < 2_000_000

    def test_policy_specs_are_jsonable(self):
        import json
        for seed in range(20):
            case = build_case(seed, allow_scenes=False)
            json.dumps(case.descr)  # must not raise
            # A fresh policy materialises per engine run (stateful objects).
            p1, p2 = case.make_policy(), case.make_policy()
            if p1 is not None:
                assert p1 is not p2


class TestEngineSelection:
    def test_unshardable_case_skips_redundant_engines(self):
        # The planner is total over policies and stream counts (single
        # stream cases shard by SM group), so the only structural refusal
        # left is a single-SM device without a pre-partitioned policy:
        # every workers=K run is the same serial path, and
        # workers4/process add nothing.
        case = build_case(0, allow_scenes=False)
        case.config = case.config.replace(num_sms=1)
        case.policy_spec = None
        assert engines_for(case) == ["serial", "workers2"]

    def test_single_stream_case_still_shards(self):
        # Planner totality: a single stream can't split by stream, but its
        # CTAs still spread over SM groups, so the full matrix applies.
        for seed in range(40):
            case = build_case(seed, allow_scenes=False)
            if len(case.streams) == 1:
                engines = engines_for(case, include_process=False)
                assert engines[:3] == ["serial", "workers2", "workers4"]
                return
        pytest.fail("no single-stream case in the first 40 seeds")

    def test_shardable_case_gets_full_matrix(self):
        for seed in range(40):
            case = build_case(seed, allow_scenes=False)
            engines = engines_for(case, include_process=False)
            if "workers4" in engines:
                assert engines[:3] == ["serial", "workers2", "workers4"]
                return
        pytest.fail("no shardable case in the first 40 seeds")


class TestOracleSmoke:
    def test_small_sweep_is_clean(self):
        """Tier-1 canary for the nightly 200-seed run."""
        report = run_fuzz(range(4), allow_scenes=False,
                          include_process=False)
        assert report.ok, report.failures
        assert len(report.seeds) == 4
        # Seed 0 lands on the QoS rerun probe: the open-loop scenarios are
        # part of the fuzz pool, judged on bit-identical reports.
        assert report.qos_probes == 1
        assert report.summary()["qos_probes"] == 1

    def test_qos_probe_can_be_disabled(self):
        report = run_fuzz(range(1), allow_scenes=False,
                          include_process=False, include_qos=False)
        assert report.ok and report.qos_probes == 0

    def test_spec_stress_arm_forces_rollbacks(self):
        """Tier-1 canary for the nightly 500-seed spec-stress sweep: the
        forced-arm must actually exercise the rollback path (a hook that
        silently stopped firing would leave the sweep vacuously green)."""
        report = run_fuzz(range(8), allow_scenes=False,
                          include_process=False, include_qos=False,
                          spec_stress=True)
        assert report.ok, report.failures
        assert report.spec_stress_cases == 8
        assert report.cases_rolled_back > 0
        summary = report.summary()
        assert summary["speculation_stress_cases"] == 8
        assert summary["cases_rolled_back"] == report.cases_rolled_back

    def test_invariant_mode_counts_runs(self):
        report = run_fuzz(range(2), check_invariants=True,
                          allow_scenes=False, include_process=False)
        assert report.ok, report.failures
        assert report.invariant_runs == 2
        assert report.summary()["invariant_checked_runs"] == 2

    def test_failure_corpus_written(self, tmp_path, monkeypatch):
        import repro.validate.differential as diff_mod

        real = diff_mod.check_case

        def buggy_check(case, engines=None, run=run_case):
            result = real(case, engines, run)
            result.mismatches["workers2"] = "$.injected: 1 vs 2"
            return result

        monkeypatch.setattr(diff_mod, "check_case", buggy_check)
        report = diff_mod.run_fuzz([3], corpus_dir=str(tmp_path),
                                   allow_scenes=False, include_process=False)
        assert not report.ok
        corpus = list(tmp_path.glob("fuzz-seed-*.json"))
        assert len(corpus) == 1
        import json
        entry = json.loads(corpus[0].read_text())
        assert entry["kind"] == "engine-mismatch"
        assert entry["seed"] == 3
        assert "minimal" in entry


class TestShrinker:
    def _buggy_run(self, case, engine):
        """A deliberate engine regression: workers2 over-counts stream 0's
        instructions by one."""
        out = run_case(case, "serial" if engine != "serial" else engine)
        if engine != "serial":
            sid = sorted(case.streams)[0]
            out.stats.streams[sid].instructions += 1
        return out

    def test_injected_regression_is_caught_and_shrunk(self):
        # Seed 1 builds a multi-kernel two-stream case — room to shrink.
        case = build_case(1, allow_scenes=False)
        assert len(case.streams) == 2

        result = check_case(case, ["serial", "workers2"], run=self._buggy_run)
        assert not result.ok
        assert "instructions" in result.mismatches["workers2"]

        def still_fails(c):
            return not check_case(c, ["serial", "workers2"],
                                  run=self._buggy_run).ok

        minimal, evals = shrink_case(case, still_fails)
        assert evals > 0
        assert minimal.descr["shrunk"], "shrinker made no progress"
        # The bug lives in stream 0 alone, so the minimal repro must be a
        # fraction of the original case.
        orig = sum(k.num_ctas for ks in case.streams.values() for k in ks)
        small = sum(k.num_ctas for ks in minimal.streams.values() for k in ks)
        assert small < orig
        assert sum(len(k) for k in minimal.streams.values()) <= 2

    def test_shrunk_case_still_replays(self):
        case = build_case(1, allow_scenes=False)

        def still_fails(c):
            return not check_case(c, ["serial", "workers2"],
                                  run=self._buggy_run).ok

        minimal, _ = shrink_case(case, still_fails)
        # The minimal case is a real, runnable case — exactly what lands
        # in the CI failure corpus.
        assert run_case(minimal, "serial").stats.cycles > 0


def _mshr_bomb_workload():
    """Two streams of scatter loads on a 2-entry-MSHR L1.

    One random-pattern warp load touches up to 32 lines; with shards owning
    alternating lines, half become deferred remote fills, so a 2-entry MSHR
    file overflows within cycles and the shard raises EpochUnsafeError.
    """
    base = get_preset("JetsonOrin-mini")
    config = base.replace(
        name="mshr-bomb",
        num_sms=2,
        l1=base.l1.__class__(size_bytes=8 * 4 * 128, assoc=4,
                             mshr_entries=2,
                             hit_latency=base.l1.hit_latency),
    )
    streams = {}
    for sid in range(2):
        mem = DeviceMemory(region=8 + sid)
        kb = KernelBuilder("bomb%d" % sid, grid=4, block=32,
                           regs_per_thread=16)
        buf = mem.buffer("a", 64 * 1024)
        for _ in range(4):
            kb.load(buf, pattern="random", words=2)
            kb.fp(2)
        streams[sid] = [kb.build()]
    return config, streams


class TestEpochUnsafeFallback:
    def test_restart_matches_pristine_serial(self):
        """A mid-flight shard bailout reruns serially and the rerun is
        bit-identical to a run that never attempted sharding.

        ``speculation="off"`` disables the interruptible-tick rescue so
        the bomb still exercises the EpochUnsafeError restart path."""
        from repro.parallel import ExecutionPlan

        config, streams = _mshr_bomb_workload()
        pristine = simulate(config=config, streams=streams, policy="mps")
        sharded = simulate(config=config, streams=streams, policy="mps",
                           execution=ExecutionPlan(engine="sharded",
                                                   workers=2,
                                                   speculation="off"))
        report = sharded.execution
        assert report.restarted, (
            "workload no longer trips EpochUnsafeError; fallback untested "
            "(report: %r)" % report)
        assert not report.engaged
        assert "redone serially" in report.fallback_reason
        diff = first_difference(canonical(pristine.stats),
                                canonical(sharded.stats))
        assert diff is None, "serial rerun diverged from pristine: %s" % diff

    @pytest.mark.parametrize("engine", ["sharded", "process"])
    def test_mshr_bomb_interrupts_instead_of_restarting(self, engine):
        """Tiny-MSHR planning: the bomb shape plans a shallow horizon with
        interruptible ticks, so the MSHR-full bailout interrupts the tick
        (shipping its partial log as probes) instead of restarting the
        whole run serially — and stays bit-identical."""
        from repro.parallel import ExecutionPlan, plan_shards
        from repro.core.partition import MPSPolicy

        config, streams = _mshr_bomb_workload()
        plan, refusal = plan_shards(
            MPSPolicy({0: [0], 1: [1]}), streams, config=config,
            execution=ExecutionPlan(engine=engine, workers=2))
        assert refusal is None
        assert plan.mshr_shallow
        assert plan.horizon == 0

        pristine = simulate(config=config, streams=streams, policy="mps")
        sharded = simulate(config=config, streams=streams, policy="mps",
                           execution=ExecutionPlan(engine=engine, workers=2))
        report = sharded.execution
        assert report.engaged and not report.restarted, report
        assert report.refusal is None
        assert report.spec_interrupts > 0
        diff = first_difference(canonical(pristine.stats),
                                canonical(sharded.stats))
        assert diff is None, "interrupted run diverged from serial: %s" % diff

    def test_fuzz_corpus_covers_both_parallel_paths(self):
        """The tuned fuzzer must keep exercising BOTH the engaged sharded
        engine and the epoch-restart fallback — a corpus that only ever
        restarts proves nothing about the parallel engine."""
        report = run_fuzz(range(30), allow_scenes=False,
                          include_process=False)
        assert report.ok, report.failures
        assert report.cases_engaged > 0, "no fuzz case engaged the shards"
        assert report.cases_restarted > 0, "no fuzz case hit the fallback"
