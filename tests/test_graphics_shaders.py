"""Tests for the shader IR, library, and translator."""

import numpy as np
import pytest

from repro.graphics.shaders import (
    Alu,
    AttrLoad,
    ColorStore,
    PBR_MAPS,
    ShaderProgram,
    ShaderTranslator,
    TexSample,
    VaryingLoad,
    VaryingStore,
    WarpBindings,
    fragment_basic,
    fragment_pbr,
    fragment_textured_lit,
    shader_pair,
    vertex_basic,
    vertex_instanced,
)
from repro.isa import DataClass, Op, Space, Unit


class TestIRValidation:
    def test_vertex_rejects_fragment_ops(self):
        with pytest.raises(ValueError):
            ShaderProgram("bad", ShaderProgram.VERTEX, [TexSample(0)])
        with pytest.raises(ValueError):
            ShaderProgram("bad", ShaderProgram.VERTEX, [ColorStore()])

    def test_fragment_rejects_vertex_ops(self):
        with pytest.raises(ValueError):
            ShaderProgram("bad", ShaderProgram.FRAGMENT, [AttrLoad("position")])
        with pytest.raises(ValueError):
            ShaderProgram("bad", ShaderProgram.FRAGMENT, [VaryingStore(8)])

    def test_rejects_unknown_stage(self):
        with pytest.raises(ValueError):
            ShaderProgram("bad", "geometry", [Alu(Unit.FP, 1)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShaderProgram("bad", ShaderProgram.VERTEX, [])

    def test_alu_rejects_mem_unit(self):
        with pytest.raises(ValueError):
            Alu(Unit.MEM, 3)

    def test_alu_rejects_zero_count(self):
        with pytest.raises(ValueError):
            Alu(Unit.FP, 0)


class TestLibrary:
    def test_pbr_samples_eight_maps(self):
        fs = fragment_pbr()
        assert len(fs.texture_slots) == len(PBR_MAPS) == 8

    def test_basic_samples_one(self):
        assert fragment_basic().texture_slots == (0,)

    def test_instanced_loads_instance_attr(self):
        vs = vertex_instanced()
        attrs = [op.attr for op in vs.ops if isinstance(op, AttrLoad)]
        assert "instance" in attrs

    def test_pbr_heavier_than_basic(self):
        assert fragment_pbr().alu_count > fragment_basic().alu_count

    def test_textured_lit_parametric(self):
        assert fragment_textured_lit(3).texture_slots == (0, 1, 2)
        with pytest.raises(ValueError):
            fragment_textured_lit(0)

    def test_shader_pair_lookup(self):
        vs, fs = shader_pair("pbr")
        assert vs.stage == ShaderProgram.VERTEX
        assert fs.stage == ShaderProgram.FRAGMENT

    def test_shader_pair_unknown(self):
        with pytest.raises(KeyError, match="basic"):
            shader_pair("nonexistent")


def vertex_bindings(active=32):
    addrs = np.arange(active, dtype=np.int64) * 32
    return WarpBindings(
        active=active,
        attr_addresses={"position": addrs, "normal": addrs + 12,
                        "uv": addrs + 24},
        varying_store_addresses=1 << 20 | np.arange(active, dtype=np.int64) * 32,
    )


def fragment_bindings(active=32, tex_slots=(0,)):
    return WarpBindings(
        active=active,
        varying_addresses=np.full(active, 1 << 20, dtype=np.int64),
        tex_lines={s: [128 * s, 128 * s + 128] for s in tex_slots},
        color_addresses=(2 << 20) + np.arange(active, dtype=np.int64) * 4,
    )


class TestTranslator:
    def test_vertex_trace_shape(self):
        trace = ShaderTranslator(vertex_basic()).emit_warp(vertex_bindings())
        ops = [i.op for i in trace]
        assert ops[-1] is Op.EXIT
        assert ops.count(Op.LDG) == 3          # three attribute fetches
        assert Op.STG in ops                   # varying export
        assert ops.count(Op.FFMA) == 38        # 32 + 6 transform ALU

    def test_vertex_fetch_tagged_vertex_class(self):
        trace = ShaderTranslator(vertex_basic()).emit_warp(vertex_bindings())
        ldg = [i for i in trace if i.op is Op.LDG]
        assert all(i.mem.data_class is DataClass.VERTEX for i in ldg)

    def test_varying_store_tagged_pipeline(self):
        trace = ShaderTranslator(vertex_basic()).emit_warp(vertex_bindings())
        stg = [i for i in trace if i.op is Op.STG]
        assert all(i.mem.data_class is DataClass.PIPELINE for i in stg)

    def test_fragment_trace_shape(self):
        trace = ShaderTranslator(fragment_basic()).emit_warp(fragment_bindings())
        ops = [i.op for i in trace]
        assert ops.count(Op.TEX) == 1
        assert Op.MUFU_RSQ in ops
        assert ops[-1] is Op.EXIT

    def test_tex_carries_merged_lines(self):
        trace = ShaderTranslator(fragment_basic()).emit_warp(
            fragment_bindings(tex_slots=(0,)))
        tex = [i for i in trace if i.op is Op.TEX][0]
        assert tex.mem.data_class is DataClass.TEXTURE
        assert tex.mem.num_transactions == 2

    def test_color_store_tagged_framebuffer(self):
        trace = ShaderTranslator(fragment_basic()).emit_warp(fragment_bindings())
        stg = [i for i in trace if i.op is Op.STG]
        assert stg[-1].mem.data_class is DataClass.FRAMEBUFFER

    def test_pbr_emits_eight_tex(self):
        trace = ShaderTranslator(fragment_pbr()).emit_warp(
            fragment_bindings(tex_slots=tuple(range(8))))
        assert sum(1 for i in trace if i.op is Op.TEX) == 8

    def test_dependency_chain_exists(self):
        trace = ShaderTranslator(fragment_basic()).emit_warp(fragment_bindings())
        # Every ALU op reads a register some earlier op wrote.
        written = set()
        chained = 0
        for inst in trace:
            if inst.srcs and any(s in written for s in inst.srcs):
                chained += 1
            if inst.dst >= 0:
                written.add(inst.dst)
        assert chained >= len(trace.instructions) // 2

    def test_partial_warp_active_lanes(self):
        trace = ShaderTranslator(vertex_basic()).emit_warp(vertex_bindings(7))
        assert all(i.active == 7 for i in trace)

    def test_missing_attribute_raises(self):
        b = WarpBindings(active=32, attr_addresses={},
                         varying_store_addresses=np.zeros(32, dtype=np.int64))
        with pytest.raises(KeyError, match="position"):
            ShaderTranslator(vertex_basic()).emit_warp(b)

    def test_missing_tex_slot_raises(self):
        b = fragment_bindings(tex_slots=())
        with pytest.raises(KeyError, match="slot 0"):
            ShaderTranslator(fragment_basic()).emit_warp(b)

    def test_missing_color_addresses_raises(self):
        b = WarpBindings(active=32,
                         varying_addresses=np.zeros(32, dtype=np.int64),
                         tex_lines={0: [0]})
        with pytest.raises(KeyError, match="color"):
            ShaderTranslator(fragment_basic()).emit_warp(b)

    def test_bindings_validate_active(self):
        with pytest.raises(ValueError):
            WarpBindings(active=0)
        with pytest.raises(ValueError):
            WarpBindings(active=33)

    def test_register_demand_reasonable(self):
        for prog in (vertex_basic(), fragment_pbr(), fragment_basic()):
            demand = ShaderTranslator(prog).register_demand()
            assert 8 <= demand <= 64
