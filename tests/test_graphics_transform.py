"""Tests for the transform math."""

import math

import numpy as np
import pytest

from repro.graphics.transform import (
    clip_to_screen,
    identity,
    look_at,
    perspective,
    rotation_x,
    rotation_y,
    scale,
    transform_points,
    translation,
)


class TestMatrices:
    def test_identity_leaves_points(self):
        pts = np.array([[1.0, 2.0, 3.0]])
        out = transform_points(identity(), pts)
        assert np.allclose(out[0], [1, 2, 3, 1])

    def test_translation(self):
        out = transform_points(translation(1, 2, 3), np.zeros((1, 3)))
        assert np.allclose(out[0, :3], [1, 2, 3])

    def test_scale(self):
        out = transform_points(scale(2, 3, 4), np.ones((1, 3)))
        assert np.allclose(out[0, :3], [2, 3, 4])

    def test_rotation_y_quarter_turn(self):
        out = transform_points(rotation_y(math.pi / 2), np.array([[1.0, 0, 0]]))
        assert np.allclose(out[0, :3], [0, 0, -1], atol=1e-12)

    def test_rotation_x_preserves_x(self):
        out = transform_points(rotation_x(1.1), np.array([[5.0, 0, 0]]))
        assert out[0, 0] == pytest.approx(5.0)

    def test_rotations_preserve_length(self):
        p = np.array([[1.0, 2.0, 3.0]])
        out = transform_points(rotation_y(0.7) @ rotation_x(0.3), p)
        assert np.linalg.norm(out[0, :3]) == pytest.approx(np.linalg.norm(p))

    def test_transform_points_validates_shape(self):
        with pytest.raises(ValueError):
            transform_points(identity(), np.zeros((3,)))


class TestPerspective:
    def test_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, 5.0, 2.0)

    def test_depth_range_zero_to_one(self):
        m = perspective(1.0, 1.0, 1.0, 100.0)
        near_pt = transform_points(m, np.array([[0.0, 0.0, 1.0]]))
        far_pt = transform_points(m, np.array([[0.0, 0.0, 100.0]]))
        assert near_pt[0, 2] / near_pt[0, 3] == pytest.approx(0.0, abs=1e-9)
        assert far_pt[0, 2] / far_pt[0, 3] == pytest.approx(1.0)

    def test_w_equals_view_depth(self):
        m = perspective(1.0, 1.0, 0.1, 100.0)
        out = transform_points(m, np.array([[0.0, 0.0, 7.0]]))
        assert out[0, 3] == pytest.approx(7.0)


class TestLookAt:
    def test_eye_maps_to_origin(self):
        v = look_at((1, 2, 3), (4, 5, 6))
        out = transform_points(v, np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(out[0, :3], 0.0, atol=1e-12)

    def test_target_on_positive_z(self):
        v = look_at((0, 0, -5), (0, 0, 5))
        out = transform_points(v, np.array([[0.0, 0.0, 5.0]]))
        assert out[0, 2] == pytest.approx(10.0)
        assert abs(out[0, 0]) < 1e-12

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            look_at((1, 1, 1), (1, 1, 1))


class TestClipToScreen:
    def test_center_maps_to_screen_center(self):
        clip = np.array([[0.0, 0.0, 0.5, 1.0]])
        s = clip_to_screen(clip, 200, 100)
        assert s[0, 0] == pytest.approx(100)
        assert s[0, 1] == pytest.approx(50)

    def test_corners(self):
        clip = np.array([[-1.0, -1.0, 0.0, 1.0], [1.0, 1.0, 0.0, 1.0]])
        s = clip_to_screen(clip, 200, 100)
        assert np.allclose(s[0, :2], [0, 0])
        assert np.allclose(s[1, :2], [200, 100])

    def test_perspective_divide(self):
        clip = np.array([[2.0, 0.0, 1.0, 2.0]])
        s = clip_to_screen(clip, 100, 100)
        assert s[0, 0] == pytest.approx(100)  # ndc x = 1
        assert s[0, 2] == pytest.approx(0.5)
