"""Tests for textures, mip chains, and the sampling model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphics import Texture2D, checkerboard, downsample, mip_level_count, noise_texture
from repro.memory import AddressAllocator


def placed(tex):
    tex.place(AddressAllocator(region=5))
    return tex


class TestMipChain:
    def test_level_count_formula(self):
        # Paper: total levels = log2(tex_dim) + 1.
        assert mip_level_count(4, 4) == 3
        assert mip_level_count(128, 128) == 8
        assert mip_level_count(64, 128) == 8

    def test_chain_generated_to_1x1(self):
        tex = Texture2D("t", checkerboard(16))
        assert tex.num_levels == 5
        assert tex.level_dims(4) == (1, 1)

    def test_each_level_halves(self):
        tex = Texture2D("t", checkerboard(16))
        for lvl in range(1, tex.num_levels):
            h_prev, w_prev = tex.level_dims(lvl - 1)
            h, w = tex.level_dims(lvl)
            assert w == max(1, w_prev // 2)
            assert h == max(1, h_prev // 2)

    def test_downsample_preserves_mean(self):
        img = noise_texture(16, seed=1)
        small = downsample(img)
        assert small.shape == (8, 8, 4)
        assert small.mean() == pytest.approx(img.mean(), abs=1e-5)

    def test_downsample_constant_stays_constant(self):
        img = np.full((8, 8, 4), 0.5, dtype=np.float32)
        assert np.allclose(downsample(img), 0.5)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Texture2D("bad", np.zeros((10, 10, 4), dtype=np.float32))

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            Texture2D("bad", np.zeros((8, 8, 3), dtype=np.float32))

    def test_no_mips_option(self):
        tex = Texture2D("flat", checkerboard(8), generate_mips=False)
        assert tex.num_levels == 1


class TestAddressing:
    def test_unplaced_raises(self):
        tex = Texture2D("t", checkerboard(8))
        with pytest.raises(RuntimeError):
            tex.texel_addresses(np.array([0]), np.array([0]), 0, np.array([0]))

    def test_levels_disjoint(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        a0 = tex.texel_addresses(np.array([7]), np.array([7]), 0, np.array([0]))
        a1 = tex.texel_addresses(np.array([0]), np.array([0]), 1, np.array([0]))
        assert a0[0] != a1[0]

    def test_row_major_within_level(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        a = tex.texel_addresses(np.array([0, 1]), np.array([0, 0]), 0,
                                np.array([0, 0]))
        assert a[1] - a[0] == tex.bytes_per_texel

    def test_layer_offsets(self):
        base = checkerboard(8)
        tex = placed(Texture2D("arr", base, layers=[base, base]))
        a = tex.texel_addresses(np.array([0, 0]), np.array([0, 0]), 0,
                                np.array([0, 1]))
        assert a[1] - a[0] == 8 * 8 * 4


class TestSampling:
    def test_nearest_returns_exact_texel(self):
        img = np.zeros((4, 4, 4), dtype=np.float32)
        img[1, 2] = (1.0, 0.5, 0.25, 1.0)
        tex = placed(Texture2D("t", img, generate_mips=False))
        colors, _ = tex.sample_nearest(np.array([2.5 / 4]), np.array([1.5 / 4]))
        assert np.allclose(colors[0], [1.0, 0.5, 0.25, 1.0])

    def test_uv_wrap_repeat(self):
        tex = placed(Texture2D("t", checkerboard(4)))
        c1, a1 = tex.sample_nearest(np.array([0.1]), np.array([0.1]))
        c2, a2 = tex.sample_nearest(np.array([1.1]), np.array([-0.9]))
        assert a1[0] == a2[0]

    def test_lod_none_uses_level0(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        _, a = tex.sample_nearest(np.array([0.9]), np.array([0.9]), lod=None)
        level0 = tex.level_bases[0]
        assert level0 <= a[0] < level0 + tex.level_bytes(0)

    def test_high_lod_uses_top_level(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        _, a = tex.sample_nearest(np.array([0.1]), np.array([0.2]),
                                  lod=np.array([99.0]))
        top = tex.level_bases[-1]
        assert a[0] == top

    def test_mip_merging_reduces_addresses(self):
        # The Fig 7 effect: 4 nearby samples -> 1 texel at the next level.
        tex = placed(Texture2D("t", checkerboard(4)))
        u = np.array([0.05, 0.3, 0.05, 0.3])
        v = np.array([0.05, 0.05, 0.3, 0.3])
        _, a0 = tex.sample_nearest(u, v, lod=np.zeros(4))
        _, a1 = tex.sample_nearest(u, v, lod=np.ones(4))
        assert len(np.unique(a0)) == 4
        assert len(np.unique(a1)) == 1

    def test_layer_sampling_uses_layer_content(self):
        base = np.zeros((4, 4, 4), dtype=np.float32)
        red = base.copy()
        red[..., 0] = 1.0
        tex = placed(Texture2D("arr", base, layers=[red], generate_mips=False))
        colors, _ = tex.sample_nearest(np.array([0.5]), np.array([0.5]),
                                       layer=np.array([1]))
        assert colors[0, 0] == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(-3, 3), st.floats(-3, 3), st.floats(0, 10))
    def test_property_sample_always_in_placed_range(self, u, v, lod):
        tex = placed(Texture2D("t", checkerboard(8)))
        colors, addrs = tex.sample_nearest(
            np.array([u]), np.array([v]), lod=np.array([lod]))
        lvl = int(np.clip(round(lod), 0, tex.num_levels - 1))
        base = tex.level_bases[lvl]
        assert base <= addrs[0] < base + tex.level_bytes(lvl)
        assert np.all(colors >= 0.0) and np.all(colors <= 1.0)


class TestProceduralTextures:
    def test_checkerboard_two_colors(self):
        img = checkerboard(8, squares=4)
        assert len(np.unique(img[..., 0])) == 2

    def test_checkerboard_rejects_npot(self):
        with pytest.raises(ValueError):
            checkerboard(10)

    def test_noise_deterministic(self):
        assert np.array_equal(noise_texture(8, seed=3), noise_texture(8, seed=3))

    def test_noise_seed_varies(self):
        assert not np.array_equal(noise_texture(8, seed=3), noise_texture(8, seed=4))
