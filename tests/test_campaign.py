"""Tests for the campaign subsystem: fingerprints, cache, resume,
parallel-equals-serial determinism."""

import json
import os

import pytest

from repro.campaign import (
    CampaignRunner,
    Job,
    ResultCache,
    run_campaign,
)
from repro.cli import main
from repro.config import JETSON_ORIN_MINI, RTX_3070_MINI
from repro.core import COMPUTE_STREAM, GRAPHICS_STREAM
from repro.isa import save_traces


def nano_job(policy="mps", **kw):
    kw.setdefault("scene", "SPL")
    kw.setdefault("compute", "VIO")
    kw.setdefault("res", "nano")
    kw.setdefault("config", "JetsonOrin-mini")
    return Job(policy=policy, **kw)


SWEEP_POLICIES = ("mps", "mig", "fg-even", "tap")


def sweep_jobs():
    """The canonical 4-job policy sweep used across these tests."""
    return [nano_job(policy) for policy in SWEEP_POLICIES]


class TestJobFingerprint:
    def test_stable_across_instances(self):
        assert nano_job().fingerprint() == nano_job().fingerprint()

    def test_sensitive_to_spec(self):
        base = nano_job().fingerprint()
        assert nano_job("fg-even").fingerprint() != base
        assert nano_job(scene="PT").fingerprint() != base
        assert nano_job(res="2k").fingerprint() != base
        assert nano_job(config="RTX3070-mini").fingerprint() != base
        assert nano_job(params={"rep": 2}).fingerprint() != base

    def test_label_is_not_identity(self):
        assert nano_job(label="a").fingerprint() == \
            nano_job(label="b").fingerprint()

    def test_preset_name_and_config_object_agree(self):
        assert nano_job(config="JetsonOrin-mini").fingerprint() == \
            nano_job(config=JETSON_ORIN_MINI).fingerprint()

    def test_params_order_insensitive(self):
        a = nano_job(params={"a": 1, "b": 2})
        b = nano_job(params={"b": 2, "a": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_trace_file_keys_by_content(self, tmp_path):
        from repro.compute import build_vio_kernels
        kernels = build_vio_kernels()
        p1, p2 = str(tmp_path / "a.gz"), str(tmp_path / "b.gz")
        save_traces(p1, kernels, metadata={"workload": "VIO"})
        save_traces(p2, kernels, metadata={"workload": "VIO"})
        assert Job(compute_trace=p1).fingerprint() == \
            Job(compute_trace=p2).fingerprint()

    def test_to_from_dict_preserves_identity(self):
        job = nano_job("tap", params={"x": 1}, config=RTX_3070_MINI)
        restored = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert restored.fingerprint() == job.fingerprint()
        assert restored.display_label == job.display_label

    def test_rejects_empty_and_conflicting_specs(self):
        with pytest.raises(ValueError):
            Job()
        with pytest.raises(ValueError):
            Job(scene="SPL", graphics_trace="x.gz")
        with pytest.raises(ValueError):
            Job(compute="VIO", compute_trace="x.gz")


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("0" * 64) is None
        assert "0" * 64 not in cache

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.path_for("ab" * 32)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as f:
            f.write("{ not json")
        assert cache.get("ab" * 32) is None


class TestCampaignRunner:
    def test_miss_then_hit(self, tmp_path):
        jobs = [nano_job()]
        cold = run_campaign(jobs, cache_dir=str(tmp_path))
        assert (cold.executed, cold.cached) == (1, 0)
        warm = run_campaign(jobs, cache_dir=str(tmp_path))
        assert (warm.executed, warm.cached) == (0, 1)
        assert warm.results[0].status == "cached"
        assert warm.results[0].stats == cold.results[0].stats

    def test_resume_after_partial_run(self, tmp_path):
        jobs = sweep_jobs()
        first = run_campaign(jobs[:2], cache_dir=str(tmp_path))
        assert first.executed == 2
        resumed = run_campaign(jobs, cache_dir=str(tmp_path))
        assert (resumed.executed, resumed.cached) == (2, 2)
        assert [r.status for r in resumed.results] == \
            ["cached", "cached", "ok", "ok"]

    def test_resume_after_partial_failure(self, tmp_path):
        bad = Job(scene="SPL", compute="NOPE", res="nano")
        broken = [nano_job("mps"), bad, nano_job("fg-even")]
        first = run_campaign(broken, cache_dir=str(tmp_path))
        assert not first.ok
        assert (first.executed, first.failed) == (2, 1)
        assert first.results[1].status == "failed"
        assert "NOPE" in first.results[1].error
        assert first.results[1].attempts == 2  # retried once before failing
        # Fix the broken job and resubmit: only it simulates.
        fixed = [nano_job("mps"), nano_job("mig"), nano_job("fg-even")]
        second = run_campaign(fixed, cache_dir=str(tmp_path))
        assert second.ok
        assert (second.executed, second.cached) == (1, 2)

    def test_parallel_equals_serial(self, tmp_path):
        jobs = sweep_jobs()
        serial = run_campaign(jobs, workers=1)
        parallel = run_campaign(jobs, workers=2)
        assert [r.label for r in parallel.results] == \
            [r.label for r in serial.results]
        for s, p in zip(serial.results, parallel.results):
            assert p.stats == s.stats
            assert p.extras == s.extras

    def test_timeout_then_resume(self, tmp_path):
        jobs = [nano_job()]
        timed_out = run_campaign(jobs, cache_dir=str(tmp_path),
                                 timeout=0.001)
        assert timed_out.results[0].status == "timeout"
        assert not timed_out.ok
        recovered = run_campaign(jobs, cache_dir=str(tmp_path))
        assert recovered.ok and recovered.executed == 1

    def test_duplicate_jobs_simulate_once(self):
        campaign = run_campaign([nano_job(), nano_job()])
        assert campaign.executed == 1
        assert campaign.results[0].stats == campaign.results[1].stats

    def test_policy_extras_captured(self):
        campaign = run_campaign([nano_job("warped-slicer"),
                                 nano_job("tap")])
        slicer, tap = campaign.results
        assert "decisions" in slicer.extras
        assert slicer.extras["samples_taken"] >= 0
        assert "final_ratio" in tap.extras

    def test_manifest_written(self, tmp_path):
        campaign = run_campaign([nano_job()], cache_dir=str(tmp_path))
        assert campaign.manifest_path
        with open(campaign.manifest_path) as f:
            doc = json.load(f)
        assert doc["campaign_id"] == campaign.campaign_id
        statuses = [e["status"] for e in doc["jobs"].values()]
        assert statuses == ["ok"]

    def test_summary_roundtrips_stats(self, tmp_path):
        from repro.timing import GPUStats
        campaign = run_campaign([nano_job()])
        out = str(tmp_path / "summary.json")
        campaign.write_summary(out)
        with open(out) as f:
            doc = json.load(f)
        assert doc["totals"]["jobs"] == 1
        job = doc["jobs"][0]
        stats = GPUStats.from_dict(job["stats"])
        assert stats.cycles == campaign.results[0].total_cycles
        assert stats.stream_cycles(GRAPHICS_STREAM) > 0
        assert stats.stream_cycles(COMPUTE_STREAM) > 0


class TestCampaignCLI:
    def test_cross_product_sweep(self, tmp_path, capsys):
        out = str(tmp_path / "s.json")
        rc = main(["campaign", "--scene", "SPL", "--compute", "VIO",
                   "--policy", "mps", "fg-even", "--res", "nano",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--out", out, "--quiet"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "2 executed" in printed
        with open(out) as f:
            doc = json.load(f)
        assert [j["status"] for j in doc["jobs"]] == ["ok", "ok"]

    def test_spec_file(self, tmp_path, capsys):
        spec = str(tmp_path / "jobs.json")
        with open(spec, "w") as f:
            json.dump({"jobs": [nano_job().to_dict()]}, f)
        assert main(["campaign", "--spec", spec, "--no-cache",
                     "--quiet"]) == 0
        assert "1 executed" in capsys.readouterr().out

    def test_requires_some_workload(self, capsys):
        assert main(["campaign", "--quiet"]) == 2

    def test_figure_accepts_jobs_flag(self, capsys):
        # fig13 at nano-scale still goes through the campaign runner.
        from repro.harness.experiments import run_fig13
        r = run_fig13("SPL", "VIO", res="nano", jobs=1)
        assert r.occupancy or r.samples_taken >= 0
