"""Tests for trilinear filtering."""

import numpy as np
import pytest

from repro.graphics import (
    Camera,
    GraphicsPipeline,
    PipelineConfig,
    Texture2D,
    checkerboard,
)
from repro.graphics.geometry import DrawCall
from repro.memory import AddressAllocator
from repro.scenes.assets import grid_mesh


def placed(tex):
    tex.place(AddressAllocator(region=11))
    return tex


class TestTrilinear:
    def test_eight_addresses_per_lane(self):
        tex = placed(Texture2D("t", checkerboard(16)))
        _, addrs = tex.sample_trilinear(np.array([0.3]), np.array([0.3]),
                                        lod=np.array([0.5]))
        assert addrs.shape == (1, 8)

    def test_taps_span_two_levels(self):
        tex = placed(Texture2D("t", checkerboard(16)))
        _, addrs = tex.sample_trilinear(np.array([0.3]), np.array([0.3]),
                                        lod=np.array([1.5]))
        lo_base = tex.level_bases[1]
        hi_base = tex.level_bases[2]
        first_half = addrs[0, :4]
        second_half = addrs[0, 4:]
        assert all(lo_base <= a < lo_base + tex.level_bytes(1)
                   for a in first_half)
        assert all(hi_base <= a < hi_base + tex.level_bytes(2)
                   for a in second_half)

    def test_integral_lod_matches_bilinear(self):
        tex = placed(Texture2D("t", checkerboard(16)))
        u = np.array([0.37])
        v = np.array([0.61])
        tri, _ = tex.sample_trilinear(u, v, lod=np.array([1.0]))
        bil, _ = tex.sample_bilinear(u, v, lod=np.array([1.0]))
        assert np.allclose(tri, bil, atol=1e-6)

    def test_fractional_lod_blends(self):
        # A texture whose levels differ strongly: level blend must land
        # between the two bilinear results.
        tex = placed(Texture2D("t", checkerboard(8, squares=8)))
        u = np.array([0.3])
        v = np.array([0.3])
        lo, _ = tex.sample_bilinear(u, v, lod=np.array([0.0]))
        hi, _ = tex.sample_bilinear(u, v, lod=np.array([1.0]))
        mid, _ = tex.sample_trilinear(u, v, lod=np.array([0.5]))
        low, high = np.minimum(lo, hi), np.maximum(lo, hi)
        assert np.all(mid >= low - 1e-6)
        assert np.all(mid <= high + 1e-6)

    def test_none_lod_duplicates_level0(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        colors, addrs = tex.sample_trilinear(np.array([0.2]), np.array([0.2]))
        assert addrs.shape == (1, 8)
        assert np.array_equal(addrs[0, :4], addrs[0, 4:])

    def test_lod_clamped_at_chain_top(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        colors, addrs = tex.sample_trilinear(
            np.array([0.2]), np.array([0.2]), lod=np.array([50.0]))
        top = tex.level_bases[-1]
        assert np.all(addrs == top)

    def test_pipeline_traffic_ordering(self):
        def render(filt):
            pipe = GraphicsPipeline(
                {"tex": Texture2D("tex", checkerboard(64))},
                config=PipelineConfig(tex_filter=filt))
            return pipe.render_frame(
                [DrawCall(grid_mesh(4, 4, extent=6.0), texture_slots=["tex"])],
                Camera(eye=(0, 2, -6)), 96, 54).tex_transactions

        near = render("nearest")
        bil = render("bilinear")
        tri = render("trilinear")
        assert near < bil < tri
        assert tri < near * 8  # merging keeps it far below the tap ratio
