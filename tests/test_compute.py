"""Tests for the kernel tracer DSL and the XR compute workloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compute import (
    Buffer,
    DeviceMemory,
    KernelBuilder,
    build_compute_workload,
    build_hologram_kernels,
    build_nn_kernels,
    build_vio_kernels,
    coverage_of,
    kernel_count_per_frame,
    principal_kernels,
)
from repro.isa import DataClass, Op, Space, Unit


@pytest.fixture()
def mem():
    return DeviceMemory(region=3)


class TestDeviceMemory:
    def test_buffers_disjoint(self, mem):
        a = mem.buffer("a", 1000)
        b = mem.buffer("b", 1000)
        assert a.base + 1000 <= b.base

    def test_buffer_recorded(self, mem):
        mem.buffer("a", 16)
        assert [b.name for b in mem.buffers] == ["a"]


class TestKernelBuilder:
    def test_grid_block_shape(self, mem):
        buf = mem.buffer("x", 4096)
        k = KernelBuilder("k", grid=3, block=64).load(buf).build()
        assert k.num_ctas == 3
        assert k.warps_per_cta == 2
        assert k.threads_per_cta == 64

    def test_rejects_non_warp_block(self):
        with pytest.raises(ValueError):
            KernelBuilder("k", grid=1, block=33)

    def test_rejects_zero_grid(self):
        with pytest.raises(ValueError):
            KernelBuilder("k", grid=0, block=32)

    def test_coalesced_load_one_line_per_warp(self, mem):
        buf = mem.buffer("x", 1 << 16)
        k = KernelBuilder("k", 1, 32).load(buf, "coalesced").build()
        ldg = [i for w in k.ctas[0].warps for i in w if i.op is Op.LDG]
        assert len(ldg) == 1
        assert ldg[0].mem.num_transactions == 1  # 32 x 4B = one 128B line

    def test_strided_load_one_line_per_thread(self, mem):
        buf = mem.buffer("x", 1 << 20)
        k = KernelBuilder("k", 1, 32).load(buf, "strided").build()
        ldg = [i for w in k.ctas[0].warps for i in w if i.op is Op.LDG][0]
        assert ldg.mem.num_transactions == 32

    def test_broadcast_single_line(self, mem):
        buf = mem.buffer("x", 4096)
        k = KernelBuilder("k", 2, 64).load(buf, "broadcast").build()
        for cta in k.ctas:
            for w in cta.warps:
                ldg = [i for i in w if i.op is Op.LDG][0]
                assert ldg.mem.num_transactions == 1

    def test_random_pattern_within_buffer(self, mem):
        buf = mem.buffer("x", 2048)
        k = KernelBuilder("k", 2, 64).load(buf, "random").build()
        for cta in k.ctas:
            for w in cta.warps:
                for i in w:
                    if i.op is Op.LDG:
                        assert all(buf.base <= l < buf.base + 2048 + 128
                                   for l in i.mem.lines)

    def test_custom_pattern_callable(self, mem):
        buf = mem.buffer("x", 1 << 16)
        k = (KernelBuilder("k", 1, 32)
             .load(buf, lambda tids: tids * 2).build())
        assert any(i.op is Op.LDG for i in k.ctas[0].warps[0])

    def test_unknown_pattern_raises(self, mem):
        buf = mem.buffer("x", 128)
        with pytest.raises(ValueError):
            KernelBuilder("k", 1, 32).load(buf, "zigzag").build()

    def test_streaming_load_bypasses(self, mem):
        buf = mem.buffer("x", 1 << 16)
        k = KernelBuilder("k", 1, 32).load(buf, streaming=True).build()
        ldg = [i for i in k.ctas[0].warps[0] if i.op is Op.LDG][0]
        assert ldg.mem.bypass_l1

    def test_alu_helpers(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .fp(3).intop(2).sfu(1).tensor(1).build())
        mix = k.instruction_mix()
        assert mix[Op.FFMA] == 3
        assert mix[Op.IMAD] == 2
        assert mix[Op.MUFU_SIN] == 1
        assert mix[Op.HMMA] == 1

    def test_shared_and_barrier(self, mem):
        k = (KernelBuilder("k", 1, 64, shared_mem=1024)
             .shared_store(2).barrier().shared_load(1).build())
        mix = k.instruction_mix()
        assert mix[Op.STS] == 2 * 2  # per warp
        assert mix[Op.BAR] == 2
        assert k.shared_mem_per_cta == 1024

    def test_store_emitted(self, mem):
        buf = mem.buffer("x", 1 << 16)
        k = KernelBuilder("k", 1, 32).fp(1).store(buf).build()
        assert k.instruction_mix()[Op.STG] == 1

    def test_every_warp_ends_with_exit(self, mem):
        buf = mem.buffer("x", 1 << 16)
        k = KernelBuilder("k", 2, 64).load(buf).fp(2).build()
        for cta in k.ctas:
            for w in cta.warps:
                assert w[len(w) - 1].op is Op.EXIT

    def test_compute_traffic_tagged(self, mem):
        buf = mem.buffer("x", 1 << 16)
        k = KernelBuilder("k", 1, 32).load(buf).build()
        assert DataClass.COMPUTE in k.memory_footprint()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 4), st.integers(1, 8))
    def test_property_instruction_count_scales(self, grid, warps, n_fp):
        m = DeviceMemory(region=4)
        buf = m.buffer("x", 1 << 16)
        k = (KernelBuilder("k", grid, warps * 32)
             .load(buf).fp(n_fp).build())
        per_warp = 1 + n_fp + 1  # LDG + FPs + EXIT
        assert k.num_instructions == grid * warps * per_warp


class TestPKA:
    def test_selects_dominant(self):
        weighted = [("a", 0.1), ("b", 0.8), ("c", 0.1)]
        assert principal_kernels(weighted, coverage=0.75) == ["b"]

    def test_preserves_launch_order(self):
        weighted = [("a", 0.3), ("b", 0.2), ("c", 0.5)]
        assert principal_kernels(weighted, coverage=0.8) == ["a", "c"]

    def test_full_coverage_keeps_all(self):
        weighted = [("a", 1.0), ("b", 1.0)]
        assert principal_kernels(weighted, coverage=1.0) == ["a", "b"]

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            principal_kernels([("a", 1.0)], coverage=0.0)

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            principal_kernels([("a", 0.0)], coverage=0.5)

    def test_empty_ok(self):
        assert principal_kernels([], coverage=0.5) == []

    def test_coverage_of(self):
        weighted = [("a", 3.0), ("b", 1.0)]
        assert coverage_of(weighted, ["a"]) == pytest.approx(0.75)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=12),
           st.floats(0.05, 1.0))
    def test_property_selection_meets_coverage(self, weights, cov):
        weighted = [(i, w) for i, w in enumerate(weights)]
        chosen = principal_kernels(weighted, coverage=cov)
        achieved = coverage_of(weighted, chosen)
        assert achieved >= cov - 1e-9
        assert chosen == sorted(chosen)  # launch order


class TestWorkloads:
    def test_vio_many_small_kernels(self):
        ks = build_vio_kernels()
        assert len(ks) == kernel_count_per_frame()
        # "Many small kernels": median kernel is small.
        sizes = sorted(k.num_instructions for k in ks)
        assert sizes[len(sizes) // 2] < 3000

    def test_vio_frames_scale(self):
        assert len(build_vio_kernels(frames=2)) == 2 * kernel_count_per_frame()

    def test_holo_compute_bound(self):
        ks = build_hologram_kernels()
        fp = sfu = mem_i = 0
        for k in ks:
            mix = k.instruction_mix()
            fp += mix.get(Op.FFMA, 0)
            sfu += mix.get(Op.MUFU_SIN, 0)
            mem_i += mix.get(Op.LDG, 0) + mix.get(Op.STG, 0)
        assert (fp + sfu) > 10 * mem_i  # overwhelmingly arithmetic

    def test_nn_uses_shared_memory_and_tensor(self):
        ks = build_nn_kernels(coverage=1.0)
        assert any(k.shared_mem_per_cta > 0 for k in ks)
        assert any(Op.HMMA in k.instruction_mix() for k in ks)
        assert any(Op.BAR in k.instruction_mix() for k in ks)

    def test_nn_pka_reduces_kernels(self):
        from repro.compute.nn import full_layer_count
        selected = build_nn_kernels(coverage=0.6)
        assert len(selected) < full_layer_count()

    def test_nn_inferences_repeat(self):
        one = build_nn_kernels(coverage=1.0, inferences=1)
        three = build_nn_kernels(coverage=1.0, inferences=3)
        assert len(three) == 3 * len(one)

    def test_nn_rejects_zero_inferences(self):
        with pytest.raises(ValueError):
            build_nn_kernels(inferences=0)

    def test_workload_registry(self):
        for name in ("VIO", "HOLO", "NN"):
            ks = build_compute_workload(name)
            assert ks

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="HOLO"):
            build_compute_workload("RAYTRACE")

    def test_compute_streams_deterministic(self):
        a = [k.num_instructions for k in build_vio_kernels()]
        b = [k.num_instructions for k in build_vio_kernels()]
        assert a == b
