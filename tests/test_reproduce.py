"""Tests for the one-shot reproduction driver."""

import os

import pytest

from repro.cli import main
from repro.harness.reproduce import RUNNERS, reproduce_all


class TestReproduceAll:
    def test_quick_subset_passes(self, tmp_path):
        records = reproduce_all(str(tmp_path), only=["table1", "fig7"])
        assert [r.exp_id for r in records] == ["table1", "fig7"]
        assert all(r.ok for r in records)
        report = (tmp_path / "RESULTS.md").read_text()
        assert "| table1 | PASS |" in report
        assert "| fig7 | PASS |" in report

    def test_detail_blocks_written(self, tmp_path):
        reproduce_all(str(tmp_path), only=["table1"])
        report = (tmp_path / "RESULTS.md").read_text()
        assert "## table1" in report
        assert "CRISP" in report

    def test_unknown_id_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="fig3"):
            reproduce_all(str(tmp_path), only=["fig99"])

    def test_all_paper_experiments_registered(self):
        expected = {"table1", "table2", "fig3", "fig6", "fig7", "fig9",
                    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}
        assert set(RUNNERS) == expected

    def test_cli_reproduce(self, tmp_path, capsys):
        out = str(tmp_path / "res")
        assert main(["reproduce", "--out", out, "--only", "fig7"]) == 0
        assert os.path.exists(os.path.join(out, "RESULTS.md"))
        assert "[PASS] fig7" in capsys.readouterr().out
