"""repro.service: run repository round-trips, backfill idempotency,
concurrent writers, job-queue dedupe, and the dashboard HTTP surface."""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign.execute import STATUS_FAILED, STATUS_OK, JobResult
from repro.campaign.job import Job
from repro.cli import main
from repro.service import RunRepository
from repro.service.ingest import backfill
from repro.service.queue import (
    STATE_CACHED,
    STATE_DONE,
    STATE_FAILED,
    JobQueue,
)
from repro.service.records import classify_document, content_key

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")


def _stats_doc(cycles=1200, instructions=900):
    return {
        "cycles": cycles,
        "streams": {"0": {"instructions": instructions, "busy_cycles": 800,
                          "stall_cycles": 300}},
        "occupancy_trace": [],
        "l2_snapshots": [],
        "l2_stream_snapshots": [],
    }


def _run_record(label="unit", cycles=1200, wall=2.0):
    return {
        "kind": "run",
        "label": label,
        "config_fingerprint": "f" * 16,
        "config_name": "JetsonOrin-mini",
        "policy": "mps",
        "cycles": cycles,
        "instructions": 900,
        "wall_seconds": wall,
        "stats": _stats_doc(cycles),
    }


def _job(policy="mps"):
    return Job(scene="SPL", res="nano", compute="HOLO", policy=policy)


def _fake_runner(calls):
    """Queue runner double: records invocations, returns plausible stats."""

    def run(job):
        calls.append(job.fingerprint())
        return JobResult(fingerprint=job.fingerprint(),
                         label=job.display_label, status=STATUS_OK,
                         wall_seconds=0.01, stats=_stats_doc())

    return run


class TestRepositoryRoundTrip:
    def test_stats_record_round_trips(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        rid = repo.add_record(_run_record())
        detail = repo.get(rid)
        assert detail["label"] == "unit"
        assert detail["policy"] == "mps"
        assert detail["stats"] == _stats_doc()
        assert detail["instructions_per_second"] == pytest.approx(900 / 2.0)

    def test_simrate_round_trips_and_normalises_schema1(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        old = {"workload": "SPL+HOLO", "instructions": 5000,
               "cycles": 800, "wall_seconds": 2.0,
               "instructions_per_second": 2500.0}
        rid = repo.add_simrate(old)
        detail = repo.get(rid)
        assert detail["kind"] == "simrate"
        assert detail["label"] == "SPL+HOLO"
        assert detail["simrate"]["schema"] == 1
        assert detail["simrate"]["config_fingerprint"] is None
        assert detail["instructions_per_second"] == 2500.0

    def test_qos_round_trips_without_events(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        report = {"kind": "qos-report", "scenario": {"name": "bursty"},
                  "seed": 7, "policy": "adaptive", "total_cycles": 90000,
                  "config": {"name": "JetsonOrin-mini", "fingerprint": "ab"},
                  "clients": {"cam": {"frame_time_cycles": {
                      "p50": 10, "p95": 20, "p99": 30, "max": 40,
                      "count": 5}}},
                  "events": [{"cycle": 1}]}
        rid = repo.add_qos(report)
        detail = repo.get(rid)
        assert detail["kind"] == "qos"
        assert detail["cycles"] == 90000
        assert detail["qos"]["clients"]["cam"]["frame_time_cycles"][
            "p99"] == 30
        assert "events" not in detail["qos"]  # non-canonical, stripped

    def test_list_and_filter(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        repo.add_record(_run_record("a"))
        repo.add_record(_run_record("b", cycles=999))
        assert [r["label"] for r in repo.list_runs()] == ["b", "a"]
        assert [r["label"] for r in repo.list_runs(label="a")] == ["a"]
        assert repo.counts()["runs"] == 2

    def test_compare_groups_by_fingerprint_and_label(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        repo.add_record(_run_record("w", wall=2.0))
        repo.add_record(_run_record("w", wall=1.0, cycles=1201))
        groups = repo.compare()
        assert len(groups) == 1
        (group,) = groups
        assert len(group["runs"]) == 2
        assert group["best_instructions_per_second"] == pytest.approx(900.0)
        assert group["latest_instructions_per_second"] == pytest.approx(
            900.0)

    def test_gc_keep(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        for i in range(5):
            repo.add_record(_run_record("r%d" % i, cycles=100 + i))
        assert repo.gc(keep=2) == 3
        assert repo.counts()["runs"] == 2


class TestIdempotentIngest:
    def test_same_record_inserts_once(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        a = repo.add_record(_run_record())
        b = repo.add_record(_run_record())
        assert a == b
        assert repo.counts()["runs"] == 1

    def test_wall_clock_is_not_identity(self, tmp_path):
        """A cache-served re-run (same stats, different wall) dedupes."""
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        a = repo.add_record(_run_record(wall=2.0))
        b = repo.add_record(_run_record(wall=9.0))
        assert a == b

    def test_backfill_twice_adds_nothing(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        first = backfill(repo, [BENCH_DIR, GOLDEN_DIR])
        assert first["records"] > 0
        total = repo.counts()["runs"]
        second = backfill(repo, [BENCH_DIR, GOLDEN_DIR])
        assert second["files"] == first["files"]
        assert repo.counts()["runs"] == total

    def test_backfill_covers_bench_goldens_and_qos(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        backfill(repo, [BENCH_DIR, GOLDEN_DIR])
        kinds = repo.counts()["by_kind"]
        assert kinds.get("simrate", 0) > 0     # BENCH_timing.json rows
        assert kinds.get("qos", 0) > 0         # QoS goldens + BENCH_qos
        assert kinds.get("run", 0) >= 6        # six policy golden snapshots

    def test_classifier_identifies_every_shape(self):
        assert classify_document({"runs": [], "baseline": None}) == "bench"
        assert classify_document({"kind": "qos-report"}) == "qos-report"
        assert classify_document({"rows": [], "headline": {}}) \
            == "qos-campaign"
        assert classify_document({"campaign_id": "c", "jobs": []}) \
            == "campaign-summary"
        assert classify_document({"campaign_id": "c", "jobs": {}}) \
            == "campaign-manifest"
        assert classify_document(_stats_doc()) == "stats"
        assert classify_document({"kind": "run", "stats": {}}) \
            == "run-record"
        assert classify_document({"unrelated": 1}) is None
        assert classify_document([1, 2]) is None

    def test_content_key_strips_volatile_keys(self):
        a = content_key("x", {"cycles": 5, "wall_seconds": 1.0})
        b = content_key("x", {"cycles": 5, "wall_seconds": 9.9})
        c = content_key("x", {"cycles": 6, "wall_seconds": 1.0})
        assert a == b != c


class TestConcurrentWriters:
    def test_parallel_threads_all_land(self, tmp_path):
        """WAL + per-call connections: no 'database is locked' failures."""
        path = str(tmp_path / "runs.sqlite")
        repo = RunRepository(path)
        errors = []

        def write(tid):
            try:
                mine = RunRepository(path)
                for i in range(10):
                    mine.add_record(_run_record("t%d-%d" % (tid, i),
                                                cycles=1000 + tid * 100 + i))
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert repo.counts()["runs"] == 40


class TestJobQueueDedupe:
    def test_duplicate_fingerprint_served_from_repository(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        calls = []
        queue = JobQueue(repo, workers=2, runner=_fake_runner(calls))
        try:
            first = queue.submit(_job())
            assert queue.join(30)
            assert first.state == STATE_DONE
            assert first.run_id is not None
            second = queue.submit(_job())
            assert second.state == STATE_CACHED
            assert second.cached
            assert second.run_id == first.run_id
            assert queue.simulated == 1
            assert len(calls) == 1  # the second submission never simulated
        finally:
            queue.shutdown()

    def test_distinct_fingerprints_both_simulate(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        calls = []
        queue = JobQueue(repo, workers=2, runner=_fake_runner(calls))
        try:
            queue.submit(_job("mps"))
            queue.submit(_job("mig"))
            assert queue.join(30)
            assert queue.simulated == 2
            assert len(set(calls)) == 2
        finally:
            queue.shutdown()

    def test_failed_job_reports_error(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))

        def failing(job):
            return JobResult(fingerprint=job.fingerprint(),
                             label=job.display_label, status=STATUS_FAILED,
                             error="boom")

        queue = JobQueue(repo, workers=1, runner=failing)
        try:
            entry = queue.submit(_job())
            assert queue.join(30)
            assert entry.state == STATE_FAILED
            assert entry.error == "boom"
            assert queue.simulated == 0
        finally:
            queue.shutdown()

    def test_events_are_monotonic_and_complete(self, tmp_path):
        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        queue = JobQueue(repo, workers=1, runner=_fake_runner([]))
        try:
            queue.submit(_job())
            assert queue.join(30)
            events = queue.events()
            assert [e["seq"] for e in events] == list(
                range(1, len(events) + 1))
            kinds = [e["kind"] for e in events]
            assert kinds[0] == "job_queued"
            assert "job_running" in kinds and "job_done" in kinds
        finally:
            queue.shutdown()


@pytest.fixture(scope="module")
def serve_stack(tmp_path_factory):
    """One repository + queue + live server shared by the HTTP tests."""
    from repro.service.server import DashboardServer

    tmp = tmp_path_factory.mktemp("serve")
    repo = RunRepository(str(tmp / "runs.sqlite"))
    backfill(repo, [BENCH_DIR])
    calls = []
    queue = JobQueue(repo, workers=1, runner=_fake_runner(calls))
    server = DashboardServer(repo, queue=queue, port=0).start()
    yield server, repo, queue, calls
    server.stop()
    queue.shutdown()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=15) as resp:
        return resp.status, resp.headers.get_content_type(), resp.read()


class TestServeSmoke:
    def test_dashboard_html(self, serve_stack):
        server, _, _, _ = serve_stack
        status, ctype, body = _get(server, "/")
        assert status == 200 and ctype == "text/html"
        text = body.decode("utf-8")
        for needle in ("Sim-rate trend", "Kernel timeline", "Queue",
                       "EventSource"):
            assert needle in text

    def test_summary(self, serve_stack):
        server, repo, _, _ = serve_stack
        _, _, body = _get(server, "/summary")
        doc = json.loads(body)
        assert doc["runs"] == repo.counts()["runs"] > 0
        assert doc["queue"]["workers"] == 1

    def test_runs_and_detail(self, serve_stack):
        server, _, _, _ = serve_stack
        _, _, body = _get(server, "/runs?limit=5")
        runs = json.loads(body)["runs"]
        assert 0 < len(runs) <= 5
        _, _, body = _get(server, "/runs/%d" % runs[0]["id"])
        detail = json.loads(body)
        assert detail["id"] == runs[0]["id"]
        assert "stats" in detail and "qos" in detail  # payload keys present

    def test_compare_groups(self, serve_stack):
        server, _, _, _ = serve_stack
        _, _, body = _get(server, "/compare")
        groups = json.loads(body)["groups"]
        assert groups, "BENCH backfill should produce trend groups"
        assert all("best_instructions_per_second" in g for g in groups)

    def test_queue_and_submit_dedupe_over_http(self, serve_stack):
        server, _, queue, calls = serve_stack
        spec = {"scene": "SPL", "res": "nano", "compute": "HOLO",
                "policy": "tap"}
        req = urllib.request.Request(
            server.url + "/submit", data=json.dumps(spec).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(req, timeout=15) as resp:
            assert resp.status == 202
        assert queue.join(30)
        before = len(calls)
        with urllib.request.urlopen(req, timeout=15) as resp:
            second = json.load(resp)
        assert second["cached"] is True
        assert len(calls) == before  # duplicate returned without simulating
        _, _, body = _get(server, "/queue")
        snapshot = json.loads(body)
        states = {j["state"] for j in snapshot["jobs"]}
        assert STATE_DONE in states and STATE_CACHED in states

    def test_events_json_and_sse(self, serve_stack):
        server, _, _, _ = serve_stack
        _, _, body = _get(server, "/events.json")
        events = json.loads(body)["events"]
        assert events and events[0]["seq"] == 1
        status, ctype, body = _get(server, "/events?limit=2&poll=0.2")
        assert status == 200 and ctype == "text/event-stream"
        frames = body.decode("utf-8")
        assert "data: " in frames and "event: " in frames

    def test_bad_run_id_is_404(self, serve_stack):
        server, _, _, _ = serve_stack
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/runs/999999")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404


class TestTelemetryViewsInRepository:
    @pytest.fixture(scope="class")
    def telemetry_dir(self, tmp_path_factory):
        from repro.core.platform import collect_streams
        from repro.api import simulate
        from repro.config import get_preset
        from repro.telemetry import Telemetry

        out = str(tmp_path_factory.mktemp("tel") / "run")
        config = get_preset("JetsonOrin-mini")
        streams = collect_streams(config, scene="SPL", res="nano",
                                  compute="HOLO")
        tel = Telemetry(out_dir=out, sample_interval=1000, label="svc-test")
        simulate(config=config, streams=streams, policy="mps",
                 telemetry=tel)
        tel.close()
        return out

    def test_loader_renderer_split_matches_legacy(self, telemetry_dir):
        from repro.harness.report import (
            load_telemetry_views,
            render_telemetry_summary,
            render_telemetry_views,
        )
        views = load_telemetry_views(telemetry_dir)
        assert views["kernel_spans"] and views["ipc_series"]
        assert render_telemetry_views(views) \
            == render_telemetry_summary(telemetry_dir)

    def test_ingested_views_render_without_loose_files(self, telemetry_dir,
                                                       tmp_path, capsys):
        from repro.harness.report import render_telemetry_views

        db = str(tmp_path / "runs.sqlite")
        repo = RunRepository(db)
        backfill(repo, [telemetry_dir])
        (run,) = repo.list_runs(source="telemetry")
        detail = repo.get(run["id"])
        assert detail["views"]["kernel_spans"]
        expected = render_telemetry_views(detail["views"])
        assert "kernel timeline" in expected
        # CLI renders the stored run from the database alone.
        assert main(["telemetry", "--run", str(run["id"]),
                     "--db", db]) == 0
        assert capsys.readouterr().out == expected

    def test_telemetry_run_missing_is_error(self, tmp_path, capsys):
        db = str(tmp_path / "runs.sqlite")
        RunRepository(db)
        assert main(["telemetry", "--run", "42", "--db", db]) == 2
        assert "no run 42" in capsys.readouterr().err


class TestCliDb:
    def test_ingest_ls_show_gc(self, tmp_path, capsys):
        db = str(tmp_path / "runs.sqlite")
        assert main(["db", "ingest", BENCH_DIR, "--db", db,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert main(["db", "ls", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "simrate" in out or "qos" in out
        first_id = int(out.splitlines()[1].split()[0])
        assert main(["db", "show", str(first_id), "--db", db]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["id"] == first_id
        assert main(["db", "gc", "--keep", "3", "--db", db]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["db", "ls", "--db", db, "--limit", "10"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4  # header + 3

    def test_gc_requires_a_filter(self, tmp_path, capsys):
        db = str(tmp_path / "runs.sqlite")
        assert main(["db", "gc", "--db", db]) == 2
        assert "give --keep" in capsys.readouterr().err


class TestCompareSimrateAgainstDb:
    def test_db_reference_gates_regressions(self, tmp_path):
        from repro.profiling import compare_simrate

        db = str(tmp_path / "runs.sqlite")
        repo = RunRepository(db)
        repo.add_simrate({"schema": 2, "label": "w",
                          "config_fingerprint": "fp1",
                          "instructions": 10000, "cycles": 100,
                          "wall_seconds": 1.0,
                          "instructions_per_second": 10000.0})
        fresh = {"schema": 2, "label": "w", "config_fingerprint": "fp1",
                 "instructions_per_second": 9500.0}
        ok, msg = compare_simrate(fresh, db, max_regression_pct=20.0)
        assert ok and "reference" in msg
        slow = dict(fresh, instructions_per_second=1000.0)
        ok, _ = compare_simrate(slow, db, max_regression_pct=20.0)
        assert not ok
        other = dict(fresh, config_fingerprint="other")
        ok, msg = compare_simrate(other, db, max_regression_pct=20.0)
        assert ok and "skipped" in msg


class TestCampaignRepositorySink:
    def test_runner_ingests_finished_jobs(self, tmp_path):
        """submit_campaign: results land in the repository and heartbeats
        reach subscribers, using the real CampaignRunner (workers=1) with
        a stubbed executor."""
        from repro.campaign.runner import CampaignRunner

        repo = RunRepository(str(tmp_path / "runs.sqlite"))
        beats = []
        runner = CampaignRunner(workers=1, cache=None, repository=repo,
                                heartbeat_sink=beats.append)
        job = _job()
        import repro.campaign.runner as runner_mod
        original = runner_mod.run_job_guarded
        runner_mod.run_job_guarded = lambda j, t: JobResult(
            fingerprint=j.fingerprint(), label=j.display_label,
            status=STATUS_OK, wall_seconds=0.01, stats=_stats_doc())
        try:
            campaign = runner.run([job])
        finally:
            runner_mod.run_job_guarded = original
        assert campaign.ok
        stored = repo.find_job(job.fingerprint())
        assert stored is not None
        assert stored["policy"] == "mps"
        kinds = [b["kind"] for b in beats]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert "job_done" in kinds
