"""Tests for the argued-against baselines: vertex cache, analytic model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import JETSON_ORIN_MINI, RTX_3070_MINI
from repro.compute import build_hologram_kernels, build_vio_kernels
from repro.graphics.vertex_batch import (
    build_batches,
    unique_vertex_count,
    vertex_cache_invocations,
)
from repro.harness.analytic import (
    AnalyticEstimate,
    estimate_concurrent,
    estimate_cycles,
)


def strip(n):
    return np.array([[i, i + 1, i + 2] for i in range(n)])


class TestVertexCacheModel:
    def test_perfect_reuse_within_cache(self):
        # Strip fits in the cache: every vertex shaded exactly once.
        assert vertex_cache_invocations(strip(20), cache_size=32) == 22

    def test_cross_batch_reuse_beats_batching(self):
        # 200-triangle strip: batch-96 re-shades boundary vertices; the
        # FIFO reuses them across the boundary.
        idx = strip(200)
        batched = unique_vertex_count(build_batches(idx, 96))
        cached = vertex_cache_invocations(idx, 32)
        assert cached < batched

    def test_thrashing_on_repeated_hub_vertex(self):
        # A triangle fan: vertex 0 is referenced by every triangle.  With
        # a tiny FIFO it keeps getting evicted (hits do not refresh age)
        # and is re-shaded repeatedly.
        tris = [[0, i, i + 1] for i in range(1, 40)]
        idx = np.array(tris)
        cached = vertex_cache_invocations(idx, cache_size=4)
        exact = len(np.unique(idx))
        assert cached > exact  # re-shades the evicted hub

    def test_fifo_not_lru(self):
        # Repeated hits must not refresh age: after [0..7] fill a cache
        # of 8, the hit on 0 in tri 3 leaves it oldest; inserting 8 then
        # evicts 0, so both 0 and (after 0's reinsertion evicts 1) 1 are
        # re-shaded: 9 unique + 2 re-shades.
        tris = [[0, 1, 2], [3, 4, 5], [6, 7, 0], [8, 0, 1]]
        count = vertex_cache_invocations(np.array(tris), cache_size=8)
        assert count == 11

    def test_rejects_bad_cache_size(self):
        with pytest.raises(ValueError):
            vertex_cache_invocations(strip(3), cache_size=0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            vertex_cache_invocations(np.array([0, 1, 2]))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 60), st.integers(1, 64))
    def test_property_bounded(self, n_tris, cache):
        idx = strip(n_tris)
        count = vertex_cache_invocations(idx, cache)
        assert len(np.unique(idx)) <= count <= idx.size

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 60))
    def test_property_bigger_cache_never_worse(self, n_tris):
        idx = strip(n_tris)
        small = vertex_cache_invocations(idx, 4)
        big = vertex_cache_invocations(idx, 64)
        assert big <= small


class TestAnalyticModel:
    def test_estimate_positive(self):
        est = estimate_cycles(build_vio_kernels(), JETSON_ORIN_MINI)
        assert isinstance(est, AnalyticEstimate)
        assert est.cycles > 0

    def test_holo_classified_compute_bound(self):
        est = estimate_cycles(build_hologram_kernels(), JETSON_ORIN_MINI)
        assert not est.memory_bound

    def test_more_work_longer_estimate(self):
        small = estimate_cycles(build_hologram_kernels(passes=1),
                                JETSON_ORIN_MINI)
        big = estimate_cycles(build_hologram_kernels(passes=4),
                              JETSON_ORIN_MINI)
        assert big.cycles > small.cycles

    def test_bigger_machine_shorter_estimate(self):
        ks = build_hologram_kernels()
        small = estimate_cycles(ks, JETSON_ORIN_MINI)
        big = estimate_cycles(ks, RTX_3070_MINI)
        assert big.cycles < small.cycles

    def test_concurrent_single_number(self):
        """The model's defining limitation: one estimate, policy-blind."""
        streams = {0: build_vio_kernels(), 1: build_hologram_kernels()}
        a = estimate_concurrent(streams, JETSON_ORIN_MINI)
        b = estimate_concurrent(streams, JETSON_ORIN_MINI)
        assert a == b
        assert a > 0

    def test_concurrent_at_least_each_component_bound(self):
        vio = build_vio_kernels()
        holo = build_hologram_kernels()
        both = estimate_concurrent({0: vio, 1: holo}, JETSON_ORIN_MINI)
        alone = max(estimate_cycles(vio, JETSON_ORIN_MINI).compute_cycles,
                    estimate_cycles(holo, JETSON_ORIN_MINI).compute_cycles)
        assert both >= alone

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_cycles([], JETSON_ORIN_MINI)
        with pytest.raises(ValueError):
            estimate_concurrent({}, JETSON_ORIN_MINI)
