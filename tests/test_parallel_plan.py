"""Unit tests for shard planning and the deferred-traffic fabric.

These cover the decision logic (:func:`repro.parallel.plan.plan_shards`)
and the arithmetic the epoch-safety proof rests on (sentinel encoding,
memory horizon, completion lower bound) without running a simulation —
the end-to-end bit-identity gate lives in ``test_parallel_golden.py``.
"""

from __future__ import annotations

from repro.config import get_preset
from repro.core.partition import FGEvenPolicy, MiGPolicy, MPSPolicy
from repro.core.tap import TAPPolicy
from repro.core.warped_slicer import WarpedSlicerPolicy
from repro.parallel import SENTINEL_BASE, plan_shards
from repro.parallel.fabric import ShardFabric
from repro.parallel.plan import shard_policy
from repro.timing.warp import BLOCKED


CONFIG = get_preset("JetsonOrin-mini")
STREAMS = (0, 1)


def _mps():
    return MPSPolicy.even(CONFIG.num_sms, list(STREAMS))


# -- plan_shards -------------------------------------------------------------

def test_plan_requires_multiple_workers():
    plan, reason = plan_shards(_mps(), STREAMS, workers=1)
    assert plan is None and "workers" in reason


def test_plan_requires_multiple_streams():
    plan, reason = plan_shards(_mps(), [0], workers=2)
    assert plan is None and "single stream" in reason


def test_plan_requires_policy():
    plan, reason = plan_shards(None, STREAMS, workers=2)
    assert plan is None and "no partition policy" in reason


def test_plan_rejects_co_scheduling_policies():
    for policy in (FGEvenPolicy.even(list(STREAMS)),
                   WarpedSlicerPolicy(list(STREAMS))):
        plan, reason = plan_shards(policy, STREAMS, workers=2)
        assert plan is None, policy.name
        assert "does not dedicate SMs" in reason


def test_plan_accepts_mps_family():
    policies = (_mps(),
                MiGPolicy.even(CONFIG.num_sms, list(STREAMS),
                               CONFIG.l2_banks),
                TAPPolicy.even(CONFIG.num_sms, list(STREAMS)))
    for policy in policies:
        plan, reason = plan_shards(policy, STREAMS, workers=2)
        assert reason is None, policy.name
        assert plan.num_shards == 2
        assert sorted(sid for g in plan.groups for sid in g) == [0, 1]


def test_plan_clamps_shards_to_stream_count():
    plan, _ = plan_shards(_mps(), STREAMS, workers=8)
    assert plan.num_shards == 2
    assert all(len(g) == 1 for g in plan.groups)


def test_plan_groups_round_robin():
    streams = [0, 1, 2]
    policy = MPSPolicy.even(CONFIG.num_sms, streams)
    plan, _ = plan_shards(policy, streams, workers=2)
    assert plan.groups == [[0, 2], [1]]


def test_shard_policy_restricts_to_group():
    plan, _ = plan_shards(_mps(), STREAMS, workers=2)
    group = plan.groups[0]
    sub = shard_policy(plan, group)
    assert isinstance(sub, MPSPolicy)
    assert sorted(sub.sm_assignment) == sorted(group)
    for sid in group:
        assert sub.sm_assignment[sid] == plan.assignment[sid]


# -- fabric arithmetic -------------------------------------------------------

def test_sentinels_sort_below_blocked():
    fabric = ShardFabric(CONFIG)
    sentinel = fabric.make_issue([], local_done=0)
    assert SENTINEL_BASE < sentinel < BLOCKED


def test_min_roundtrip_matches_config():
    fabric = ShardFabric(CONFIG)
    assert fabric.min_roundtrip == (2 * CONFIG.icnt_latency
                                    + CONFIG.l2.hit_latency)


def test_mem_horizon_tracks_earliest_unresolved_visit():
    fabric = ShardFabric(CONFIG)
    assert fabric.mem_horizon() == BLOCKED  # nothing outstanding
    fabric.cycle = 100
    op_a = fabric.defer_load(None, "load", line=0x40, t=100, data_class=0,
                             stream=0, sector_mask=1, fetch_bytes=32)
    fabric.cycle = 250
    fabric.defer_load(None, "load", line=0x80, t=250, data_class=0,
                      stream=0, sector_mask=1, fetch_bytes=32)
    assert fabric.mem_horizon() == 100 + fabric.min_roundtrip
    assert fabric.completion_lower_bound(op_a) == (
        100 + CONFIG.l2.hit_latency + CONFIG.icnt_latency)


def test_store_log_entries_need_no_patch():
    fabric = ShardFabric(CONFIG)
    fabric.record_store(line=0xc0, t=7, data_class=0, stream=1)
    assert not fabric.unresolved
    (entry,) = fabric.log
    assert entry[0] is None and entry[3] == "store"
