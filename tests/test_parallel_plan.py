"""Unit tests for shard planning and the deferred-traffic fabric.

These cover the decision logic (:func:`repro.parallel.plan.plan_shards`
with its two shard modes and structured refusals), the ExecutionPlan
surface, the load balancer, and the arithmetic the epoch-safety proof
rests on (sentinel encoding, memory horizon, completion lower bound)
without running a simulation — the end-to-end bit-identity gate lives in
``test_parallel_golden.py``.
"""

from __future__ import annotations

import pytest

from repro.config import get_preset
from repro.core.partition import FGEvenPolicy, MiGPolicy, MPSPolicy
from repro.core.tap import TAPPolicy
from repro.core.warped_slicer import WarpedSlicerPolicy
from repro.parallel import (
    SENTINEL_BASE,
    ExecutionPlan,
    balance_groups,
    plan_shards,
    split_sms,
)
from repro.parallel.fabric import ShardFabric
from repro.parallel.plan import (
    DEFAULT_HORIZON,
    REFUSAL_ARRIVALS,
    REFUSAL_SERIAL_REQUESTED,
    REFUSAL_SINGLE_SM,
    REFUSAL_SINGLE_STREAM,
    REFUSAL_TELEMETRY_STREAM_MODE,
    REFUSAL_WORKERS,
    _stream_weights,
    mshr_defer_cap,
    mshr_tiny,
    resolve_horizon,
    shard_policy,
)
from repro.telemetry import Telemetry
from repro.timing.warp import BLOCKED


CONFIG = get_preset("JetsonOrin-mini")
STREAMS = (0, 1)


def _mps():
    return MPSPolicy.even(CONFIG.num_sms, list(STREAMS))


def _plan(policy, streams, workers=2, **kw):
    kw.setdefault("config", CONFIG)
    return plan_shards(policy, streams, workers=workers, **kw)


# -- refusals ----------------------------------------------------------------

def test_plan_requires_multiple_workers():
    plan, refusal = _plan(_mps(), STREAMS, workers=1)
    assert plan is None and refusal.code == REFUSAL_WORKERS
    assert "workers" in refusal.render()


def test_plan_refuses_serial_engine():
    plan, refusal = _plan(_mps(), STREAMS,
                          execution=ExecutionPlan(engine="serial",
                                                  workers=4),
                          workers=None)
    assert plan is None and refusal.code == REFUSAL_SERIAL_REQUESTED


def test_plan_refuses_open_loop_arrivals():
    plan, refusal = _plan(_mps(), STREAMS, arrivals=True)
    assert plan is None and refusal.code == REFUSAL_ARRIVALS


def test_stream_mode_requires_multiple_streams():
    plan, refusal = _plan(_mps(), [0],
                          execution=ExecutionPlan(workers=2,
                                                  shard_by="stream"),
                          workers=None)
    assert plan is None and refusal.code == REFUSAL_SINGLE_STREAM


def test_stream_mode_refuses_telemetry():
    plan, refusal = _plan(_mps(), STREAMS,
                          execution=ExecutionPlan(workers=2,
                                                  shard_by="stream"),
                          workers=None, telemetry=Telemetry())
    assert plan is None and refusal.code == REFUSAL_TELEMETRY_STREAM_MODE


def test_sm_mode_requires_multiple_sms():
    tiny = CONFIG.replace(name="one-sm", num_sms=1)
    plan, refusal = plan_shards(None, [0], config=tiny,
                                execution=ExecutionPlan(workers=2,
                                                        shard_by="sm"))
    assert plan is None and refusal.code == REFUSAL_SINGLE_SM
    assert refusal.to_dict() == {"code": REFUSAL_SINGLE_SM,
                                 "detail": "num_sms=1"}


# -- mode selection ----------------------------------------------------------

def test_plan_accepts_mps_family_in_stream_mode():
    policies = (_mps(),
                MiGPolicy.even(CONFIG.num_sms, list(STREAMS),
                               CONFIG.l2_banks),
                TAPPolicy.even(CONFIG.num_sms, list(STREAMS)))
    for policy in policies:
        plan, refusal = _plan(policy, STREAMS)
        assert refusal is None, policy.name
        assert plan.mode == "stream"
        assert plan.num_shards == 2
        assert sorted(sid for g in plan.groups for sid in g) == [0, 1]


def test_co_scheduling_policies_plan_sm_mode():
    for policy in (None,
                   FGEvenPolicy.even(list(STREAMS)),
                   WarpedSlicerPolicy(list(STREAMS))):
        plan, refusal = _plan(policy, STREAMS)
        assert refusal is None
        assert plan.mode == "sm"
        assert plan.num_shards == 2
        flat = [sm for g in plan.sm_groups for sm in g]
        assert flat == list(range(CONFIG.num_sms))


def test_telemetry_forces_sm_mode():
    plan, refusal = _plan(_mps(), STREAMS, telemetry=Telemetry())
    assert refusal is None
    assert plan.mode == "sm"


def test_explicit_sm_mode_overrides_stream_soundness():
    plan, _ = _plan(_mps(), STREAMS,
                    execution=ExecutionPlan(workers=2, shard_by="sm"),
                    workers=None)
    assert plan.mode == "sm"


def test_plan_clamps_shards_to_stream_count():
    plan, _ = _plan(_mps(), STREAMS, workers=8)
    assert plan.num_shards == 2
    assert all(len(g) == 1 for g in plan.groups)


def test_plan_describe_round_trips():
    plan, _ = _plan(_mps(), STREAMS)
    d = plan.describe()
    assert d["mode"] == "stream" and d["num_shards"] == 2


# -- load balancing ----------------------------------------------------------

def test_balance_groups_by_weight():
    # LPT: heaviest (stream 2, w=90) alone; 50+40 together beats 90+40.
    groups = balance_groups({0: 50, 1: 40, 2: 90}, 2)
    assert groups == [[2], [0, 1]] or groups == [[0, 1], [2]]
    loads = [sum({0: 50, 1: 40, 2: 90}[s] for s in g) for g in groups]
    assert max(loads) == 90


def test_balance_groups_deterministic_ties():
    assert balance_groups({0: 1, 1: 1, 2: 1, 3: 1}, 2) == \
        balance_groups({0: 1, 1: 1, 2: 1, 3: 1}, 2)


def test_plan_shards_balances_by_instruction_count():
    class K:
        def __init__(self, n):
            self.num_instructions = n

    streams = {0: [K(10)], 1: [K(1000)], 2: [K(20)]}
    policy = MPSPolicy.even(CONFIG.num_sms, [0, 1, 2])
    plan, _ = _plan(policy, streams)
    # The heavy stream gets a shard to itself.
    assert [1] in plan.groups
    assert sorted(sid for g in plan.groups for sid in g) == [0, 1, 2]


def test_stream_weights_survive_malformed_kernel():
    """Regression: one kernel without ``num_instructions`` used to
    collapse its whole stream's weight to 1, putting a heavy stream on
    the same shard as everything else."""
    class K:
        def __init__(self, n):
            self.num_instructions = n

    class Junk:
        pass

    streams = {0: [K(500), Junk(), K(500)], 1: [K(10)], 2: [K(20)]}
    weights = _stream_weights(streams)
    # The malformed kernel falls back to 1 instruction, per kernel.
    assert weights == {0: 1001, 1: 10, 2: 20}
    # And LPT still isolates the heavy stream.
    policy = MPSPolicy.even(CONFIG.num_sms, [0, 1, 2])
    plan, _ = _plan(policy, streams)
    assert [0] in plan.groups


def test_stream_weights_empty_and_id_only():
    assert _stream_weights({0: [], 1: None}) == {0: 1, 1: 1}
    assert _stream_weights((3, 5)) == {3: 1, 5: 1}


def test_split_sms_contiguous_even():
    assert split_sms(8, 2) == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert split_sms(5, 2) == [[0, 1, 2], [3, 4]]
    assert split_sms(2, 8) == [[0], [1]]


def test_shard_policy_restricts_to_group():
    plan, _ = _plan(_mps(), STREAMS)
    group = plan.groups[0]
    sub = shard_policy(plan, group)
    assert isinstance(sub, MPSPolicy)
    assert sorted(sub.sm_assignment) == sorted(group)
    for sid in group:
        assert sub.sm_assignment[sid] == plan.assignment[sid]


# -- ExecutionPlan surface ---------------------------------------------------

def test_execution_plan_backend_mapping():
    assert ExecutionPlan(engine="process").backend == "process"
    assert ExecutionPlan(engine="sharded").backend == "inline"
    assert ExecutionPlan().backend is None
    assert ExecutionPlan(engine="serial").backend is None


def test_execution_plan_coerce_rejects_junk():
    with pytest.raises(TypeError):
        ExecutionPlan.coerce("fast")


def test_execution_plan_validates_speculation_knobs():
    with pytest.raises(ValueError):
        ExecutionPlan(horizon=0)
    with pytest.raises(ValueError):
        ExecutionPlan(speculation="maybe")
    plan = ExecutionPlan(horizon=3, speculation="on")
    assert ExecutionPlan.from_dict(plan.to_dict()) == plan


# -- speculation planning ----------------------------------------------------

def _tiny_mshr_config(entries=8):
    import dataclasses
    return CONFIG.replace(name="tiny-mshr",
                          l1=dataclasses.replace(CONFIG.l1,
                                                 mshr_entries=entries))


def test_resolve_horizon_per_mode_defaults():
    auto = ExecutionPlan()
    assert resolve_horizon(auto, "stream") == DEFAULT_HORIZON["stream"]
    assert resolve_horizon(auto, "sm") == DEFAULT_HORIZON["sm"]
    assert resolve_horizon(ExecutionPlan(speculation="off"), "sm") == 0
    assert resolve_horizon(ExecutionPlan(horizon=5), "stream") == 5


def test_planned_horizon_and_defer_cap():
    plan, _ = _plan(_mps(), STREAMS)
    assert plan.horizon == DEFAULT_HORIZON["stream"]
    assert plan.defer_cap == CONFIG.l1.mshr_entries // 2
    assert not plan.mshr_shallow
    off, _ = _plan(_mps(), STREAMS,
                   execution=ExecutionPlan(workers=2, speculation="off"),
                   workers=None)
    assert off.horizon == 0


def test_mshr_tiny_threshold_is_two_warp_instructions():
    assert mshr_tiny(_tiny_mshr_config(8))
    assert mshr_tiny(_tiny_mshr_config(63))
    assert not mshr_tiny(_tiny_mshr_config(64))
    assert not mshr_tiny(CONFIG)
    assert mshr_defer_cap(_tiny_mshr_config(8)) == 4
    assert mshr_defer_cap(CONFIG) == CONFIG.l1.mshr_entries // 2


def test_tiny_mshr_plans_shallow_interruptible_window():
    tiny = _tiny_mshr_config()
    policy = MPSPolicy.even(tiny.num_sms, list(STREAMS))
    plan, refusal = plan_shards(policy, STREAMS, config=tiny, workers=2)
    assert refusal is None
    assert plan.mshr_shallow and plan.horizon == 0
    # An explicit horizon= still wins: the knob is an override.
    deep, _ = plan_shards(policy, STREAMS, config=tiny,
                          execution=ExecutionPlan(workers=2, horizon=2))
    assert deep.mshr_shallow and deep.horizon == 2
    # Speculation off keeps the conservative path entirely.
    off, _ = plan_shards(policy, STREAMS, config=tiny,
                         execution=ExecutionPlan(workers=2,
                                                 speculation="off"))
    assert not off.mshr_shallow and off.horizon == 0


# -- fabric arithmetic -------------------------------------------------------

def test_sentinels_sort_below_blocked():
    fabric = ShardFabric(CONFIG)
    sentinel = fabric.make_issue([], local_done=0)
    assert SENTINEL_BASE < sentinel < BLOCKED


def test_min_roundtrip_matches_config():
    fabric = ShardFabric(CONFIG)
    assert fabric.min_roundtrip == (2 * CONFIG.icnt_latency
                                    + CONFIG.l2.hit_latency)


def test_mem_horizon_tracks_earliest_unresolved_visit():
    fabric = ShardFabric(CONFIG)
    assert fabric.mem_horizon() == BLOCKED  # nothing outstanding
    fabric.cycle = 100
    op_a = fabric.defer_load(None, "load", line=0x40, t=100, data_class=0,
                             stream=0, sector_mask=1, fetch_bytes=32)
    fabric.cycle = 250
    fabric.defer_load(None, "load", line=0x80, t=250, data_class=0,
                      stream=0, sector_mask=1, fetch_bytes=32)
    assert fabric.mem_horizon() == 100 + fabric.min_roundtrip
    assert fabric.completion_lower_bound(op_a) == (
        100 + CONFIG.l2.hit_latency + CONFIG.icnt_latency)


def test_store_log_entries_need_no_patch():
    fabric = ShardFabric(CONFIG)
    fabric.record_store(line=0xc0, t=7, data_class=0, stream=1)
    assert not fabric.unresolved
    (entry,) = fabric.log
    assert entry[0] is None and entry[3] == "store"
