"""Tests for the artifact-style CSV reports."""

import csv
import os

import pytest

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import CRISP
from repro.harness.report import (
    DRAW_COLUMNS,
    SIM_COLUMNS,
    draw_rows,
    sim_rows,
    write_csv,
    write_draw_report,
    write_sim_report,
)


@pytest.fixture(scope="module")
def frame_and_stats():
    crisp = CRISP(JETSON_ORIN_MINI)
    frame = crisp.trace_scene("SPL", "2k")
    stats = simulate(config=JETSON_ORIN_MINI,
                     streams={0: frame.kernels}).stats
    return frame, stats


class TestRows:
    def test_sim_rows_one_per_stream(self, frame_and_stats):
        _, stats = frame_and_stats
        rows = sim_rows(stats)
        assert len(rows) == 1
        assert set(rows[0]) == set(SIM_COLUMNS)
        assert rows[0]["instructions"] > 0
        assert 0 <= rows[0]["l1_hit_rate"] <= 1

    def test_draw_rows_one_per_draw(self, frame_and_stats):
        frame, _ = frame_and_stats
        rows = draw_rows(frame)
        assert len(rows) == len(frame.draw_stats)
        assert set(rows[0]) == set(DRAW_COLUMNS)

    def test_draw_rows_values_consistent(self, frame_and_stats):
        frame, _ = frame_and_stats
        for row, d in zip(draw_rows(frame), frame.draw_stats):
            assert row["fragments"] == d.fragments
            assert row["vs_invocations"] == d.vs_invocations


class TestWriteCSV:
    def test_roundtrip(self, tmp_path, frame_and_stats):
        frame, stats = frame_and_stats
        sim_path = str(tmp_path / "sim.csv")
        draw_path = str(tmp_path / "render_passes_2k.csv")
        write_sim_report(sim_path, stats)
        write_draw_report(draw_path, frame)
        with open(sim_path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 1
        assert int(rows[0]["instructions"]) == stats.stream(0).instructions
        with open(draw_path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == len(frame.draw_stats)

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "x.csv"), [])

    def test_missing_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lack"):
            write_csv(str(tmp_path / "x.csv"), [{"a": 1}], columns=["a", "b"])

    def test_custom_column_order(self, tmp_path):
        path = str(tmp_path / "x.csv")
        write_csv(path, [{"a": 1, "b": 2}], columns=["b", "a"])
        with open(path) as f:
            header = f.readline().strip()
        assert header == "b,a"
