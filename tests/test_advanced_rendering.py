"""Tests for the advanced rendering techniques: index-fetch traffic,
depth pre-pass, and shadow mapping (render-to-texture)."""

import numpy as np
import pytest

from repro.graphics import (
    Camera,
    Framebuffer,
    GraphicsPipeline,
    PipelineConfig,
    Texture2D,
    checkerboard,
)
from repro.graphics.geometry import DrawCall
from repro.isa import DataClass, Op, ShaderKind
from repro.scenes.assets import box_mesh, grid_mesh, sphere_mesh


def make_pipe(**cfg):
    textures = {"tex": Texture2D("tex", checkerboard(64))}
    return GraphicsPipeline(textures, config=PipelineConfig(**cfg))


CAM = Camera(eye=(0, 2, -6), target=(0, 0, 0))


def overdraw_draws():
    """Two full-screen-ish quads, back one drawn second (worst case for
    plain early-Z, best case for a pre-pass)."""
    back = box_mesh((8, 8, 0.2), center=(0, 0, 2), name="back")
    front = box_mesh((8, 8, 0.2), center=(0, 0, -1), name="front")
    return [DrawCall(back, texture_slots=["tex"], name="back"),
            DrawCall(front, texture_slots=["tex"], name="front")]


class TestIndexFetch:
    def test_vs_kernels_carry_index_loads(self):
        pipe = make_pipe()
        res = pipe.render_frame(
            [DrawCall(grid_mesh(6, 6), texture_slots=["tex"])], CAM, 96, 54)
        vs = [k for k in res.kernels if k.kind == ShaderKind.VERTEX][0]
        first_warp = vs.ctas[0].warps[0]
        first = first_warp[0]
        assert first.op is Op.LDG
        assert first.mem.data_class is DataClass.VERTEX

    def test_index_traffic_scales_with_triangles(self):
        pipe = make_pipe()
        small = pipe.render_frame(
            [DrawCall(grid_mesh(2, 2, name="s"), texture_slots=["tex"])],
            CAM, 96, 54)
        pipe2 = make_pipe()
        big = pipe2.render_frame(
            [DrawCall(grid_mesh(12, 12, name="b"), texture_slots=["tex"])],
            CAM, 96, 54)

        def vertex_lines(res):
            total = 0
            for k in res.kernels:
                if k.kind == ShaderKind.VERTEX:
                    total += k.memory_footprint().get(DataClass.VERTEX, 0)
            return total

        assert vertex_lines(big) > vertex_lines(small)


class TestDepthPrepass:
    def test_prepass_emits_vsz_kernels(self):
        pipe = make_pipe(depth_prepass=True)
        res = pipe.render_frame(overdraw_draws(), CAM, 96, 54)
        names = [k.name for k in res.kernels]
        assert any(n.startswith("vsz:") for n in names)
        assert any(n.startswith("vs:") for n in names)
        # Pre-pass kernels come first.
        first_vs = next(i for i, n in enumerate(names) if n.startswith("vs:"))
        last_vsz = max(i for i, n in enumerate(names) if n.startswith("vsz:"))
        assert last_vsz < first_vs

    def test_prepass_eliminates_occluded_shading(self):
        plain = make_pipe(depth_prepass=False).render_frame(
            overdraw_draws(), CAM, 96, 54)
        pre = make_pipe(depth_prepass=True).render_frame(
            overdraw_draws(), CAM, 96, 54)
        back_plain = plain.draw_stats[0].fragments
        back_pre = pre.draw_stats[0].fragments
        # Without the pre-pass the back quad (drawn first) shades fully;
        # with it, the front quad's depths kill almost all of it.
        assert back_pre < back_plain * 0.2

    def test_prepass_image_matches_plain(self):
        plain = make_pipe(depth_prepass=False).render_frame(
            overdraw_draws(), CAM, 96, 54)
        pre = make_pipe(depth_prepass=True).render_frame(
            overdraw_draws(), CAM, 96, 54)
        assert np.array_equal(plain.framebuffer.as_image(),
                              pre.framebuffer.as_image())

    def test_prepass_adds_vertex_work(self):
        plain = make_pipe(depth_prepass=False).render_frame(
            overdraw_draws(), CAM, 96, 54)
        pre = make_pipe(depth_prepass=True).render_frame(
            overdraw_draws(), CAM, 96, 54)
        vs_plain = sum(k.num_instructions for k in plain.kernels
                       if k.kind == ShaderKind.VERTEX)
        vs_pre = sum(k.num_instructions for k in pre.kernels
                     if k.kind == ShaderKind.VERTEX)
        assert vs_pre > vs_plain  # the trade the technique makes


class TestShadowMapping:
    def scene(self):
        floor = DrawCall(grid_mesh(6, 6, extent=6.0, name="floor"),
                         texture_slots=["tex", "shadow_map"],
                         shader="shadowed", name="floor")
        blocker = DrawCall(sphere_mesh(8, 10, radius=1.0, center=(0, 1.5, 0),
                                       name="ball"),
                           texture_slots=["tex", "shadow_map"],
                           shader="shadowed", name="ball")
        return [floor, blocker]

    def render_with_shadow(self):
        pipe = make_pipe()
        light = Camera(eye=(4, 8, -4), target=(0, 0, 0), fov_y=1.2)
        draws = self.scene()
        shadow_kernels, tex = pipe.render_shadow_map(draws, light, size=64)
        res = pipe.render_frame(draws, CAM, 96, 54)
        return pipe, shadow_kernels, tex, res

    def test_shadow_pass_is_depth_only(self):
        _, shadow_kernels, _, _ = self.render_with_shadow()
        assert shadow_kernels
        assert all(k.name.startswith("vsz:") for k in shadow_kernels)

    def test_shadow_texture_aliases_depth_target(self):
        pipe, _, tex, res = self.render_with_shadow()
        base = tex.level_bases[0]
        span = 64 * 64 * 4
        # Fragment TEX traffic must include reads of the shadow target.
        touched = set()
        for k in res.kernels:
            for cta in k.ctas:
                for w in cta.warps:
                    for inst in w:
                        if inst.op is Op.TEX:
                            touched.update(inst.mem.lines)
        assert any(base <= l < base + span + 128 for l in touched), \
            "sampling the shadow map must read the render target's lines"

    def test_shadow_map_contains_blocker_depths(self):
        _, _, tex, _ = self.render_with_shadow()
        depths = tex.levels[0][0, :, :, 0]
        assert depths.min() < 0.99  # something rendered into the map
        assert depths.max() == pytest.approx(1.0)  # background cleared far

    def test_duplicate_shadow_map_name_rejected(self):
        pipe = make_pipe()
        light = Camera(eye=(4, 8, -4), target=(0, 0, 0))
        draws = self.scene()
        pipe.render_shadow_map(draws, light, size=64)
        with pytest.raises(ValueError, match="exists"):
            pipe.render_shadow_map(draws, light, size=64)

    def test_non_pot_size_rejected(self):
        pipe = make_pipe()
        with pytest.raises(ValueError, match="power of two"):
            pipe.render_shadow_map(self.scene(), CAM, size=100)

    def test_full_shadow_frame_simulates(self):
        from repro.config import JETSON_ORIN_MINI
        from repro.timing import simulate
        _, shadow_kernels, _, res = self.render_with_shadow()
        stats = simulate(JETSON_ORIN_MINI,
                         {0: list(shadow_kernels) + list(res.kernels)})
        assert stats.stream(0).kernels_completed == \
            len(shadow_kernels) + len(res.kernels)
