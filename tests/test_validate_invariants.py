"""InvariantChecker: observes without perturbing, and actually catches bugs.

Two contracts pinned here:

* **Bit-identity** — attaching an :class:`InvariantChecker` to a run must
  not change a single stat.  We replay the golden reference workload with
  and without the checker and compare canonical ``GPUStats.to_dict()``
  trees.
* **Sensitivity** — a checker that never fires is worse than none.  The
  negative tests corrupt live simulator state from inside telemetry hooks
  (miscounted cache stats, a lost heap wakeup, a short-committed warp, an
  overlapping bank partition) and assert the matching check group raises
  :class:`InvariantViolation`.
"""

import pytest

from repro.api import simulate
from repro.config import get_preset
from repro.core.platform import collect_streams
from repro.validate import InvariantChecker, InvariantViolation, check_run
from repro.validate.differential import canonical, first_difference


@pytest.fixture(scope="module")
def reference_workload():
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


class TestBitIdentity:
    @pytest.mark.parametrize("policy", ["mps", "tap"])
    def test_checker_does_not_perturb_stats(self, reference_workload, policy):
        """Checked and unchecked runs agree bit-for-bit (tap also covers
        the repartition hook)."""
        config, streams = reference_workload
        plain = simulate(config=config, streams=streams, policy=policy).stats
        checked, checker = check_run(config, streams, policy=policy)
        diff = first_difference(canonical(plain), canonical(checked))
        assert diff is None, "InvariantChecker perturbed the run: %s" % diff
        assert checker.finalized

    def test_all_check_groups_fired(self, reference_workload):
        config, streams = reference_workload
        _, checker = check_run(config, streams, policy="tap")
        report = checker.report()
        for group in ("caches", "cta_retire", "event_heap", "final",
                      "partitions", "sample", "stall_sums"):
            assert report.get(group, 0) > 0, (
                "check group %r never ran: %r" % (group, report))

    def test_checked_run_reports_serial_fallback(self, reference_workload):
        """The checker marks itself requires_serial, so it forces the
        serial engine even at workers=2 (ordinary telemetry shards in sm
        mode; the invariants walk serial data structures)."""
        from repro.parallel import ExecutionPlan

        config, streams = reference_workload
        checker = InvariantChecker()
        result = simulate(config=config, streams=streams, policy="mps",
                          telemetry=checker,
                          execution=ExecutionPlan(engine="sharded",
                                                  workers=2))
        assert not result.execution.engaged
        assert result.execution.refusal.code == "telemetry-requires-serial"
        assert checker.finalized


class _CorruptingChecker(InvariantChecker):
    """Checker that vandalises simulator state once, mid-run."""

    def __init__(self, corrupt):
        super().__init__(sample_interval=200)
        self._corrupt = corrupt
        self._done = False

    def on_sample(self, gpu, cycle):
        if not self._done and cycle > 0:
            self._done = True
            self._corrupt(gpu)
        super().on_sample(gpu, cycle)


def _run_corrupted(reference_workload, corrupt):
    config, streams = reference_workload
    checker = _CorruptingChecker(corrupt)
    with pytest.raises(InvariantViolation) as exc:
        simulate(config=config, streams=streams, policy="mps",
                 telemetry=checker)
    assert checker._done, "corruption hook never fired"
    return str(exc.value)


class TestSensitivity:
    def test_detects_cache_miscount(self, reference_workload):
        def corrupt(gpu):
            l1 = gpu.sms[0].ldst.l1
            stream = next(iter(l1.stats))
            l1.stats[stream].hits += 1

        msg = _run_corrupted(reference_workload, corrupt)
        assert "cache_accounting" in msg

    def test_detects_merge_overcount(self, reference_workload):
        def corrupt(gpu):
            l1 = gpu.sms[0].ldst.l1
            stream = next(iter(l1.stats))
            st = l1.stats[stream]
            st.mshr_merges = st.misses + 1

        msg = _run_corrupted(reference_workload, corrupt)
        assert "MSHR merges exceed" in msg

    def test_detects_lost_wakeup(self, reference_workload):
        def corrupt(gpu):
            # Re-key an SM's expected wakeup without pushing the matching
            # heap entry: its old entries all go stale, so the SM would
            # sleep forever.
            sm = gpu.sms[0]
            sm._queued_event = gpu.cycle + 7

        msg = _run_corrupted(reference_workload, corrupt)
        assert "lost wakeup" in msg

    def test_detects_partition_overlap(self, reference_workload):
        def corrupt(gpu):
            gpu.l2.banks[0].partition_sets({0: 4, 1: 4})

        msg = _run_corrupted(reference_workload, corrupt)
        assert "partitions" in msg

    def test_detects_short_committed_warp(self, reference_workload):
        class ShortCommit(InvariantChecker):
            def on_cta_retire(self, sm, cta, cycle):
                cta.warps[0].pc -= 1
                super().on_cta_retire(sm, cta, cycle)

        config, streams = reference_workload
        with pytest.raises(InvariantViolation) as exc:
            simulate(config=config, streams=streams, policy="mps",
                     telemetry=ShortCommit())
        assert "warp_commit" in str(exc.value)

    def test_detects_instruction_loss_at_final(self, reference_workload):
        class DropRetired(InvariantChecker):
            def on_run_end(self, gpu):
                for sid in self._retired_insts:
                    self._retired_insts[sid] -= 1
                super().on_run_end(gpu)

        config, streams = reference_workload
        with pytest.raises(InvariantViolation) as exc:
            simulate(config=config, streams=streams, policy="mps",
                     telemetry=DropRetired())
        assert "final" in str(exc.value)


class TestCheckerErgonomics:
    def test_report_is_sorted_and_counts(self, reference_workload):
        config, streams = reference_workload
        _, checker = check_run(config, streams)
        report = checker.report()
        assert list(report) == sorted(report)
        assert report["final"] == 1

    def test_interval_paces_midrun_checks(self, reference_workload):
        config, streams = reference_workload
        _, coarse = check_run(config, streams, sample_interval=5000)
        _, fine = check_run(config, streams, sample_interval=500)
        assert fine.report()["sample"] > coarse.report()["sample"]
