"""Tests for the sectored-cache model (32B sectors, Accel-Sim style)."""

import numpy as np
import pytest

from repro.compute import DeviceMemory, KernelBuilder
from repro.config import CacheConfig, RTX_3070_MINI
from repro.core import CRISP
from repro.isa import DataClass
from repro.memory import SetAssocCache, coalesce_sectors, sector_mask_of
from repro.api import simulate as api_simulate
from repro.timing import simulate


def sectored_l1(config=RTX_3070_MINI):
    return config.replace(
        l1=CacheConfig(size_bytes=128 * 1024, assoc=8, hit_latency=30,
                       sector_size=32))


class TestConfig:
    def test_sector_size_must_divide_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=4096, assoc=4, sector_size=48)

    def test_sectors_per_line(self):
        assert CacheConfig(size_bytes=4096, assoc=4,
                           sector_size=32).sectors_per_line == 4
        assert CacheConfig(size_bytes=4096, assoc=4).sectors_per_line == 1


class TestSectorMask:
    def test_mask_bits(self):
        assert sector_mask_of(0, [0]) == 0b0001
        assert sector_mask_of(0, [32, 96]) == 0b1010
        assert sector_mask_of(256, [256 + 64]) == 0b0100

    def test_coalesce_sectors(self):
        # Two lanes in the same sector merge; a third in the next sector
        # does not.
        assert coalesce_sectors(np.array([0, 4, 40])) == [0, 32]


class TestSectoredCacheBehaviour:
    def cache(self):
        return SetAssocCache(CacheConfig(size_bytes=8 * 2 * 128, assoc=2,
                                         sector_size=32))

    def test_sector_miss_on_resident_line(self):
        c = self.cache()
        c.access(0, 0, DataClass.COMPUTE, 0, sector_mask=0b0001)
        c.fill(0, DataClass.COMPUTE, 0, sector_mask=0b0001)
        # Same line, different sector: resident but sector-missing.
        hit, _ = c.access(0, 1, DataClass.COMPUTE, 0, sector_mask=0b0100)
        assert not hit
        c.fill(0, DataClass.COMPUTE, 0, sector_mask=0b0100)
        hit, _ = c.access(0, 2, DataClass.COMPUTE, 0, sector_mask=0b0101)
        assert hit

    def test_full_line_fill_serves_all_sectors(self):
        c = self.cache()
        c.fill(0, DataClass.COMPUTE, 0)  # mask 0 = whole line
        hit, _ = c.access(0, 1, DataClass.COMPUTE, 0, sector_mask=0b1111)
        assert hit

    def test_unsectored_requests_ignore_masks(self):
        c = self.cache()
        c.fill(0, DataClass.COMPUTE, 0, sector_mask=0b0001)
        hit, _ = c.access(0, 1, DataClass.COMPUTE, 0)  # whole-line request
        assert hit


class TestSectoredTraffic:
    def _kernel(self, pattern):
        mem = DeviceMemory(region=13)
        buf = mem.buffer("x", 1 << 22)
        return (KernelBuilder("k", 8, 128)
                .load(buf, pattern)
                .fp(4)
                .build())

    def test_sparse_access_moves_fewer_dram_bytes(self):
        """Strided access touches 4B per 128B line: the sectored config
        fetches 32B instead of 128B per miss."""
        from repro.timing import GPU
        kernel = self._kernel("strided")
        plain_gpu = GPU(RTX_3070_MINI)
        plain_gpu.add_stream(0, [kernel])
        plain_gpu.run()
        plain_bytes = plain_gpu.l2.dram.aggregate_bytes()

        kernel2 = self._kernel("strided")
        sect_gpu = GPU(sectored_l1())
        sect_gpu.add_stream(0, [kernel2])
        sect_gpu.run()
        sect_bytes = sect_gpu.l2.dram.aggregate_bytes()
        assert sect_bytes < plain_bytes / 2

    def test_dense_access_unaffected(self):
        """Coalesced access touches every sector: same bytes either way."""
        from repro.timing import GPU
        kernel = self._kernel("coalesced")
        plain_gpu = GPU(RTX_3070_MINI)
        plain_gpu.add_stream(0, [kernel])
        plain_gpu.run()
        kernel2 = self._kernel("coalesced")
        sect_gpu = GPU(sectored_l1())
        sect_gpu.add_stream(0, [kernel2])
        sect_gpu.run()
        assert sect_gpu.l2.dram.aggregate_bytes() == \
            plain_gpu.l2.dram.aggregate_bytes()

    def test_graphics_frame_runs_sectored(self):
        crisp = CRISP(sectored_l1())
        frame = crisp.trace_scene("SPL", "2k")
        stats = api_simulate(config=crisp.config,
                             streams={0: frame.kernels}).stats
        assert stats.stream(0).kernels_completed == len(frame.kernels)

    def test_traces_carry_sectors(self):
        crisp = CRISP()
        frame = crisp.trace_scene("SPL", "2k")
        with_sectors = 0
        total = 0
        for k in frame.kernels:
            for cta in k.ctas:
                for w in cta.warps:
                    for inst in w:
                        if inst.mem is not None:
                            total += 1
                            if inst.mem.sectors is not None:
                                with_sectors += 1
        assert with_sectors > total * 0.5

    def test_sectors_subset_of_lines(self):
        from repro.compute import build_vio_kernels
        for k in build_vio_kernels():
            for cta in k.ctas:
                for w in cta.warps:
                    for inst in w:
                        if inst.mem is None or inst.mem.sectors is None:
                            continue
                        lines = set(inst.mem.lines)
                        for s in inst.mem.sectors:
                            assert s - (s % 128) in lines
