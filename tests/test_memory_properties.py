"""Property-based tests for the memory address layer.

Hypothesis sweeps what the example-based tests spot-check:

* line/set decomposition — the shift+mask fast path agrees with the
  divide+modulo reference for every address, on power-of-two and
  non-power-of-two geometries, before and after set-partition re-pointing;
* warp coalescing — the coalesced transaction list covers *exactly* the
  lines (or sectors) the lanes touched: nothing missing, nothing extra,
  first-occurrence order preserved;
* the bump allocator — distinct buffers never share a cache line, and
  distinct regions never overlap at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory.address import (
    LINE_SIZE,
    SECTOR_SIZE,
    AddressAllocator,
    coalesce,
    coalesce_array,
    coalesce_sectors,
    line_of,
    span_lines,
)
from repro.memory.cache import SetAssocCache, SetPartition

# Large enough to cross region boundaries (regions are 1 TB apart).
addresses = st.integers(min_value=0, max_value=1 << 42)
lane_arrays = st.lists(addresses, min_size=1, max_size=64)


def _make_cache(num_sets: int, assoc: int = 4) -> SetAssocCache:
    cfg = CacheConfig(size_bytes=num_sets * assoc * LINE_SIZE, assoc=assoc,
                      mshr_entries=4, hit_latency=1)
    return SetAssocCache(cfg, name="prop")


# -- line/set decomposition --------------------------------------------------

@given(addr=addresses,
       num_sets=st.sampled_from((8, 16, 32, 128)),
       stream=st.integers(min_value=0, max_value=3))
def test_pow2_shift_mask_matches_divmod(addr, num_sets, stream):
    cache = _make_cache(num_sets)
    assert cache._line_shift is not None  # pow2 geometry takes the fast path
    line = line_of(addr)
    set_idx, tag = cache._index(line, stream)
    assert tag == line
    assert set_idx == (line // LINE_SIZE) % num_sets


@given(addr=addresses,
       num_sets=st.sampled_from((12, 24, 48)),
       stream=st.integers(min_value=0, max_value=3))
def test_non_pow2_uses_divmod(addr, num_sets, stream):
    cache = _make_cache(num_sets)
    assert cache._line_shift is None
    line = line_of(addr)
    set_idx, _ = cache._index(line, stream)
    assert set_idx == (line // LINE_SIZE) % num_sets
    assert 0 <= set_idx < num_sets


@given(addr=addresses,
       num_sets=st.sampled_from((16, 24, 32)),
       counts=st.tuples(st.integers(1, 8), st.integers(1, 8)))
def test_partitioned_index_lands_in_stream_range(addr, num_sets, counts):
    cache = _make_cache(num_sets)
    ratios = {0: counts[0], 1: counts[1]}
    cache.partition_sets(ratios)
    cache.validate_partition()
    line = line_of(addr)
    part = cache.set_partition
    for stream in (0, 1):
        start, count = part.ranges[stream]
        set_idx, _ = cache._index(line, stream)
        assert start <= set_idx < start + count
        assert set_idx == part.map_set(stream, (line // LINE_SIZE) % num_sets)
    # A stream outside the partition keeps the identity mapping.
    set_idx, _ = cache._index(line, 7)
    assert set_idx == (line // LINE_SIZE) % num_sets


@given(num_sets=st.sampled_from((16, 24, 32)),
       first=st.tuples(st.integers(1, 8), st.integers(1, 8)),
       second=st.tuples(st.integers(1, 8), st.integers(1, 8)))
def test_repointing_rebuilds_tables_from_scratch(num_sets, first, second):
    cache = _make_cache(num_sets)
    cache.partition_sets({0: first[0], 1: first[1]})
    cache.partition_sets({0: second[0], 1: second[1]})  # TAP re-pointing
    cache.validate_partition()
    assert cache.set_partition.ranges == \
        SetPartition(num_sets, {0: second[0], 1: second[1]}).ranges
    for stream, (start, count) in cache.set_partition.ranges.items():
        table = cache._set_map[stream]
        assert table == [start + raw % count for raw in range(num_sets)]
        # Onto its range: every set in the range is reachable (count <= 8
        # and num_sets >= 16, so raw indices wrap at least once).
        assert set(table) == set(range(start, start + count))
    cache.partition_sets(None)
    cache.validate_partition()
    assert cache._set_map == {} and cache.set_partition is None


@given(num_sets=st.integers(1, 64),
       ratios=st.dictionaries(st.integers(0, 5), st.integers(1, 64),
                              min_size=1, max_size=4))
def test_set_partition_construction_matches_validate(num_sets, ratios):
    # Construction and validate() must agree on what's legal: anything the
    # constructor accepts passes validate(); oversubscription raises.
    if sum(ratios.values()) > num_sets:
        with pytest.raises(ValueError):
            SetPartition(num_sets, ratios)
        return
    part = SetPartition(num_sets, ratios)
    part.validate()
    spans = sorted(part.ranges.values())
    for (s0, c0), (s1, _c1) in zip(spans, spans[1:]):
        assert s0 + c0 <= s1  # pairwise disjoint


# -- coalescing --------------------------------------------------------------

@given(lanes=lane_arrays)
def test_coalesce_covers_exactly_the_touched_lines(lanes):
    lines = coalesce(lanes)
    # Exactness: the transaction set equals the set of touched lines.
    assert set(lines) == {line_of(a) for a in lanes}
    # Distinct, line-aligned, first-occurrence order.
    assert len(lines) == len(set(lines))
    assert all(ln % LINE_SIZE == 0 for ln in lines)
    firsts = []
    for a in lanes:
        ln = line_of(a)
        if ln not in firsts:
            firsts.append(ln)
    assert lines == firsts


@given(lanes=lane_arrays)
def test_coalesce_array_agrees_with_scalar_coalesce(lanes):
    assert coalesce_array(np.array(lanes, dtype=np.int64)) == coalesce(lanes)


@given(lanes=lane_arrays)
def test_coalesce_sectors_exact_and_within_lines(lanes):
    sectors = coalesce_sectors(np.array(lanes, dtype=np.int64))
    assert set(sectors) == {a - a % SECTOR_SIZE for a in lanes}
    assert all(s % SECTOR_SIZE == 0 for s in sectors)
    # Every sector nests inside a touched line (sectors refine lines).
    touched_lines = {line_of(a) for a in lanes}
    assert all(line_of(s) in touched_lines for s in sectors)


@given(base=addresses, num_bytes=st.integers(1, 4 * LINE_SIZE))
def test_span_lines_exact_cover(base, num_bytes):
    lines = span_lines(base, num_bytes)
    want = sorted({line_of(base + i) for i in range(num_bytes)})
    assert lines == want
    # Contiguous: no gaps between consecutive lines.
    assert all(b - a == LINE_SIZE for a, b in zip(lines, lines[1:]))


@settings(max_examples=25)
@given(base=addresses, num_bytes=st.integers(1, 1 << 20))
def test_span_lines_count_formula(base, num_bytes):
    lines = span_lines(base, num_bytes)
    first = line_of(base)
    last = line_of(base + num_bytes - 1)
    assert lines[0] == first and lines[-1] == last
    assert len(lines) == (last - first) // LINE_SIZE + 1


# -- allocator ---------------------------------------------------------------

@given(sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=16))
def test_allocator_buffers_never_share_a_line(sizes):
    alloc = AddressAllocator(region=0)
    spans = [(base, size) for size in sizes
             for base in (alloc.alloc(size),)]
    seen = set()
    for base, size in spans:
        assert base % LINE_SIZE == 0
        lines = set(span_lines(base, size))
        assert not (seen & lines)
        seen |= lines


@given(sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=8),
       regions=st.tuples(st.integers(0, 30), st.integers(0, 30)))
def test_allocator_regions_disjoint(sizes, regions):
    r0, r1 = regions
    if r0 == r1:
        r1 += 1
    a0, a1 = AddressAllocator(region=r0), AddressAllocator(region=r1)
    lines0 = set()
    lines1 = set()
    for size in sizes:
        lines0 |= set(span_lines(a0.alloc(size), size))
        lines1 |= set(span_lines(a1.alloc(size), size))
    assert not (lines0 & lines1)
