"""Tests for bilinear texture filtering and its pipeline integration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphics import (
    Camera,
    GraphicsPipeline,
    PipelineConfig,
    Texture2D,
    checkerboard,
)
from repro.memory import AddressAllocator
from repro.scenes.assets import grid_mesh


def placed(tex):
    tex.place(AddressAllocator(region=7))
    return tex


class TestBilinearSampling:
    def test_texel_center_exact(self):
        img = np.zeros((4, 4, 4), dtype=np.float32)
        img[1, 2] = (0.8, 0.4, 0.2, 1.0)
        tex = placed(Texture2D("t", img, generate_mips=False))
        # Texel (2, 1) center: u = 2.5/4, v = 1.5/4 -> exact value.
        colors, _ = tex.sample_bilinear(np.array([2.5 / 4]), np.array([1.5 / 4]))
        assert np.allclose(colors[0], [0.8, 0.4, 0.2, 1.0], atol=1e-6)

    def test_midpoint_blends_evenly(self):
        img = np.zeros((2, 2, 4), dtype=np.float32)
        img[0, 0, 0] = 1.0  # one red texel
        tex = placed(Texture2D("t", img, generate_mips=False))
        # Texture center: equal weight on all four texels.
        colors, _ = tex.sample_bilinear(np.array([0.5]), np.array([0.5]))
        assert colors[0, 0] == pytest.approx(0.25)

    def test_four_addresses_per_lane(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        _, addrs = tex.sample_bilinear(np.array([0.3, 0.7]), np.array([0.3, 0.7]))
        assert addrs.shape == (2, 4)

    def test_footprint_is_2x2_neighbourhood(self):
        tex = placed(Texture2D("t", checkerboard(8), generate_mips=False))
        _, addrs = tex.sample_bilinear(np.array([0.4]), np.array([0.4]))
        offs = np.sort(addrs[0] - addrs[0].min())
        bpt, w = 4, 8
        assert list(offs) == [0, bpt, w * bpt, w * bpt + bpt]

    def test_respects_lod(self):
        tex = placed(Texture2D("t", checkerboard(8)))
        _, a_hi = tex.sample_bilinear(np.array([0.3]), np.array([0.3]),
                                      lod=np.array([99.0]))
        top = tex.level_bases[-1]
        assert np.all(a_hi == top)  # 1x1 level: all four taps collapse

    def test_wraps_at_edges(self):
        tex = placed(Texture2D("t", checkerboard(4), generate_mips=False))
        colors, addrs = tex.sample_bilinear(np.array([0.999]), np.array([0.999]))
        base = tex.level_bases[0]
        assert np.all(addrs >= base)
        assert np.all(addrs < base + tex.level_bytes(0))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_property_blend_within_texel_range(self, u, v):
        tex = placed(Texture2D("t", checkerboard(8), generate_mips=False))
        colors, _ = tex.sample_bilinear(np.array([u]), np.array([v]))
        lvl = tex.levels[0][0]
        assert colors[0, 0] >= lvl[..., 0].min() - 1e-6
        assert colors[0, 0] <= lvl[..., 0].max() + 1e-6

    def test_smoother_than_nearest(self):
        """Bilinear output has fewer distinct values than nearest on a
        checkerboard (it interpolates the edges)."""
        tex = placed(Texture2D("t", checkerboard(8), generate_mips=False))
        uv = np.linspace(0.01, 0.99, 200)
        near, _ = tex.sample_nearest(uv, uv)
        bil, _ = tex.sample_bilinear(uv, uv)
        assert len(np.unique(bil[:, 0])) > len(np.unique(near[:, 0]))


class TestPipelineIntegration:
    def _render(self, tex_filter):
        textures = {"tex": Texture2D("tex", checkerboard(64))}
        pipe = GraphicsPipeline(textures,
                                config=PipelineConfig(tex_filter=tex_filter))
        from repro.graphics.geometry import DrawCall
        draw = DrawCall(grid_mesh(4, 4, extent=6.0), texture_slots=["tex"])
        cam = Camera(eye=(0, 2, -6), target=(0, 0, 0))
        return pipe.render_frame([draw], cam, 96, 54)

    def test_bilinear_increases_traffic_sublinearly(self):
        near = self._render("nearest")
        bil = self._render("bilinear")
        ratio = bil.tex_transactions / near.tex_transactions
        # 4 taps/lane, but quad-overlap merging keeps it well below 4x.
        assert 1.0 < ratio < 4.0

    def test_bilinear_image_still_written(self):
        res = self._render("bilinear")
        img = res.framebuffer.as_image()
        assert (img[..., :3].sum(axis=2) > 0).sum() > 100

    def test_config_validates_filter(self):
        with pytest.raises(ValueError):
            PipelineConfig(tex_filter="anisotropic")
