"""Tests for address allocation and warp coalescing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory import (
    LINE_SIZE,
    AddressAllocator,
    coalesce,
    coalesce_array,
    interleave_lines,
    line_of,
    span_lines,
    total_unique_lines,
)


class TestAllocator:
    def test_line_aligned(self):
        a = AddressAllocator()
        for size in (1, 127, 128, 129, 4096):
            assert a.alloc(size) % LINE_SIZE == 0

    def test_allocations_disjoint(self):
        a = AddressAllocator()
        b1 = a.alloc(100)
        b2 = a.alloc(100)
        # Distinct buffers never share a cache line.
        assert line_of(b1 + 99) < line_of(b2)

    def test_regions_far_apart(self):
        a0 = AddressAllocator(region=0)
        a1 = AddressAllocator(region=1)
        assert abs(a1.alloc(16) - a0.alloc(16)) >= 1 << 40

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            AddressAllocator().alloc(0)

    def test_rejects_negative_region(self):
        with pytest.raises(ValueError):
            AddressAllocator(region=-1)

    def test_bytes_allocated_tracks(self):
        a = AddressAllocator()
        a.alloc(100)
        assert a.bytes_allocated == 128


class TestCoalesce:
    def test_same_line_merges(self):
        assert coalesce([0, 4, 8, 127]) == [0]

    def test_distinct_lines(self):
        assert coalesce([0, 128, 256]) == [0, 128, 256]

    def test_first_occurrence_order(self):
        assert coalesce([256, 0, 300, 4]) == [256, 0]

    def test_empty(self):
        assert coalesce([]) == []

    def test_array_matches_list(self):
        addrs = [5, 133, 1, 700, 133]
        assert coalesce_array(np.array(addrs)) == coalesce(addrs)

    def test_array_empty(self):
        assert coalesce_array(np.array([], dtype=np.int64)) == []

    @given(st.lists(st.integers(min_value=0, max_value=1 << 40),
                    min_size=1, max_size=64))
    def test_property_lines_cover_all_addresses(self, addrs):
        lines = set(coalesce(addrs))
        for a in addrs:
            assert line_of(a) in lines

    @given(st.lists(st.integers(min_value=0, max_value=1 << 40),
                    min_size=1, max_size=64))
    def test_property_no_duplicate_lines(self, addrs):
        lines = coalesce(addrs)
        assert len(lines) == len(set(lines))
        assert len(lines) <= len(addrs)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=1, max_size=64))
    def test_property_all_line_aligned(self, addrs):
        assert all(l % LINE_SIZE == 0 for l in coalesce(addrs))


class TestSpans:
    def test_span_single_line(self):
        assert span_lines(0, 128) == [0]

    def test_span_straddles(self):
        assert span_lines(100, 100) == [0, 128]

    def test_span_empty(self):
        assert span_lines(0, 0) == []

    def test_interleave(self):
        assert interleave_lines(130, 3) == [128, 256, 384]

    def test_total_unique(self):
        assert total_unique_lines([[0, 128], [128, 256]]) == 3
