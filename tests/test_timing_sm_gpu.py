"""Tests for the SM model, CTA scheduling, stream semantics, and the GPU loop."""

import pytest

from repro.config import RTX_3070_MINI
from repro.isa import (
    CTATrace,
    DataClass,
    KernelTrace,
    MemAccess,
    Op,
    WarpInstruction,
    WarpTrace,
)
from repro.memory import L2Cache
from repro.timing import (
    GPU,
    DeadlockError,
    PartitionPolicy,
    SM,
    GPUStats,
    simulate,
)
from repro.timing.cta import StreamQueue


def alu_warp(n=4):
    wt = WarpTrace([WarpInstruction(Op.FFMA, dst=4 + i % 8, srcs=(1,))
                    for i in range(n)])
    wt.append(WarpInstruction(Op.EXIT))
    return wt


def make_kernel(name="k", n_ctas=2, warps=2, n=4, regs=16, smem=0,
                depends_on_prev=True):
    ctas = [CTATrace([alu_warp(n) for _ in range(warps)], c)
            for c in range(n_ctas)]
    return KernelTrace(name, ctas, threads_per_cta=warps * 32,
                       regs_per_thread=regs, shared_mem_per_cta=smem,
                       depends_on_prev=depends_on_prev)


def barrier_kernel(warps=4):
    ctas = []
    wts = []
    for _ in range(warps):
        wt = WarpTrace([
            WarpInstruction(Op.FFMA, dst=4, srcs=(1,)),
            WarpInstruction(Op.BAR),
            WarpInstruction(Op.FFMA, dst=8, srcs=(4,)),
            WarpInstruction(Op.EXIT),
        ])
        wts.append(wt)
    ctas.append(CTATrace(wts, 0))
    return KernelTrace("barrier", ctas, threads_per_cta=warps * 32)


def fresh_sm():
    stats = GPUStats()
    l2 = L2Cache(RTX_3070_MINI)
    return SM(0, RTX_3070_MINI, l2, stats), stats


class TestSMResidency:
    def test_launch_consumes_resources(self):
        sm, _ = fresh_sm()
        k = make_kernel(regs=32, smem=1024)
        sm.launch_cta(k, k.ctas[0], stream=0)
        assert sm.free_threads == RTX_3070_MINI.max_threads_per_sm - 64
        assert sm.free_registers == RTX_3070_MINI.registers_per_sm - 32 * 64
        assert sm.free_shared_mem == RTX_3070_MINI.shared_mem_per_sm - 1024
        assert sm.free_warp_slots == RTX_3070_MINI.max_warps_per_sm - 2

    def test_stream_usage_tracked(self):
        sm, _ = fresh_sm()
        k = make_kernel()
        sm.launch_cta(k, k.ctas[0], stream=5)
        u = sm.stream_usage(5)
        assert u.threads == 64
        assert u.warps == 2

    def test_fits_rejects_when_full(self):
        sm, _ = fresh_sm()
        k = make_kernel(warps=2, regs=64)
        res = k.cta_resources()
        while sm.fits(res):
            sm.launch_cta(k, k.ctas[0], stream=0)
        assert not sm.fits(res)

    def test_launch_raises_if_no_fit(self):
        sm, _ = fresh_sm()
        sm.free_threads = 0
        k = make_kernel()
        with pytest.raises(RuntimeError):
            sm.launch_cta(k, k.ctas[0], 0)

    def test_completion_frees_resources(self):
        sm, stats = fresh_sm()
        k = make_kernel(n_ctas=1, warps=1, n=2)
        sm.launch_cta(k, k.ctas[0], stream=0)
        cycle = 0
        for _ in range(200):
            sm.process_completions(cycle)
            if not sm.has_work:
                break
            sm.tick(cycle)
            cycle += 1
        assert not sm.has_work
        assert sm.free_warp_slots == RTX_3070_MINI.max_warps_per_sm
        assert stats.stream(0).ctas_completed == 1


class TestBarrier:
    def test_barrier_synchronises_cta(self):
        stats = simulate(RTX_3070_MINI, {0: [barrier_kernel(4)]})
        s = stats.stream(0)
        # All warps executed all instructions (2 FFMA + BAR + EXIT each).
        assert s.instructions == 4 * 4

    def test_barrier_kernel_terminates(self):
        stats = simulate(RTX_3070_MINI, {0: [barrier_kernel(8)]})
        assert stats.cycles > 0


class TestStreamQueue:
    def test_in_order_dependent_kernels(self):
        a = make_kernel("a")
        b = make_kernel("b", depends_on_prev=True)
        sq = StreamQueue(0, [a, b])
        assert sq.current_kernel() is a
        # b cannot start before a completes.
        while sq.has_issuable_cta:
            sq.take_cta()
        assert sq.current_kernel() is None
        for _ in range(a.num_ctas):
            sq.note_cta_complete(a.uid, 10)
        assert sq.current_kernel() is b

    def test_pipelined_independent_kernel(self):
        a = make_kernel("a")
        b = make_kernel("b", depends_on_prev=False)
        sq = StreamQueue(0, [a, b])
        while sq._issuable_state() is not None and \
                sq._issuable_state().kernel is a:
            sq.take_cta()
        # a fully issued but not complete: b may start anyway.
        assert sq.current_kernel() is b

    def test_max_inflight_limits(self):
        kernels = [make_kernel("k%d" % i, depends_on_prev=False)
                   for i in range(5)]
        sq = StreamQueue(0, kernels, max_inflight=2)
        while sq.has_issuable_cta:
            sq.take_cta()
        assert sq.inflight == 2

    def test_completion_out_of_order_tolerated(self):
        a = make_kernel("a", n_ctas=2)
        b = make_kernel("b", n_ctas=1, depends_on_prev=False)
        sq = StreamQueue(0, [a, b])
        taken = []
        while sq.has_issuable_cta:
            taken.append(sq.take_cta()[0])
        # Complete b first.
        assert sq.note_cta_complete(b.uid, 5)
        assert not sq.all_complete
        sq.note_cta_complete(a.uid, 6)
        assert sq.note_cta_complete(a.uid, 7)
        assert sq.all_complete
        names = [n for n, _ in sq.kernel_completions]
        assert names == ["b", "a"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StreamQueue(0, [])

    def test_unknown_uid_raises(self):
        sq = StreamQueue(0, [make_kernel()])
        with pytest.raises(KeyError):
            sq.note_cta_complete(999999, 0)


class TestGPURun:
    def test_single_stream_completes(self):
        stats = simulate(RTX_3070_MINI, {0: [make_kernel(n_ctas=4)]})
        assert stats.stream(0).ctas_completed == 4
        assert stats.stream(0).kernels_completed == 1

    def test_deterministic(self):
        def run():
            return simulate(RTX_3070_MINI, {0: [make_kernel(n_ctas=4, n=20)]}).cycles
        assert run() == run()

    def test_two_streams_both_complete(self):
        stats = simulate(RTX_3070_MINI,
                         {0: [make_kernel("a")], 1: [make_kernel("b")]})
        assert stats.stream(0).kernels_completed == 1
        assert stats.stream(1).kernels_completed == 1

    def test_per_stream_instruction_counts(self):
        k = make_kernel(n_ctas=2, warps=2, n=4)
        stats = simulate(RTX_3070_MINI, {0: [k]})
        assert stats.stream(0).instructions == k.num_instructions

    def test_no_streams_raises(self):
        gpu = GPU(RTX_3070_MINI)
        with pytest.raises(ValueError):
            gpu.run()

    def test_duplicate_stream_rejected(self):
        gpu = GPU(RTX_3070_MINI)
        gpu.add_stream(0, [make_kernel()])
        with pytest.raises(ValueError):
            gpu.add_stream(0, [make_kernel()])

    def test_quota_deadlock_detected(self):
        class TinyQuota(PartitionPolicy):
            name = "tiny"

            def quota(self, sm, stream, config):
                from repro.isa import CTAResources
                return CTAResources(threads=1, registers=1, shared_mem=0,
                                    warps=0)

        gpu = GPU(RTX_3070_MINI, policy=TinyQuota())
        gpu.add_stream(0, [make_kernel()])
        with pytest.raises(DeadlockError):
            gpu.run()

    def test_memory_kernel_records_l1_stats(self):
        wt = WarpTrace([
            WarpInstruction(Op.LDG, dst=4,
                            mem=MemAccess([0, 128], DataClass.COMPUTE)),
            WarpInstruction(Op.EXIT),
        ])
        k = KernelTrace("mem", [CTATrace([wt])], threads_per_cta=32)
        stats = simulate(RTX_3070_MINI, {0: [k]})
        assert stats.stream(0).l1_accesses == 2

    def test_texture_transactions_tagged(self):
        wt = WarpTrace([
            WarpInstruction(Op.TEX, dst=4,
                            mem=MemAccess([0, 128, 256], DataClass.TEXTURE)),
            WarpInstruction(Op.EXIT),
        ])
        k = KernelTrace("tex", [CTATrace([wt])], threads_per_cta=32)
        stats = simulate(RTX_3070_MINI, {0: [k]})
        assert stats.stream(0).l1_tex_accesses == 3

    def test_sampling_records_occupancy(self):
        gpu = GPU(RTX_3070_MINI, sample_interval=10)
        gpu.add_stream(0, [make_kernel(n_ctas=8, n=50)])
        stats = gpu.run()
        assert stats.occupancy_trace
        assert stats.l2_snapshots

    def test_more_work_takes_longer(self):
        small = simulate(RTX_3070_MINI, {0: [make_kernel(n_ctas=2, n=10)]})
        big = simulate(RTX_3070_MINI, {0: [make_kernel(n_ctas=64, n=100)]})
        assert big.cycles > small.cycles

    def test_streaming_load_bypasses_l1(self):
        wt = WarpTrace([
            WarpInstruction(Op.LDG, dst=4,
                            mem=MemAccess([0], DataClass.COMPUTE,
                                          bypass_l1=True)),
            WarpInstruction(Op.EXIT),
        ])
        k = KernelTrace("stream", [CTATrace([wt])], threads_per_cta=32)
        stats = simulate(RTX_3070_MINI, {0: [k]})
        assert stats.stream(0).l1_accesses == 0
        assert stats.stream(0).mem_transactions == 1
