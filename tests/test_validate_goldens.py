"""Golden-snapshot manager: regen is byte-stable, check mirrors tier-1.

``repro validate regen-goldens`` replaces the ad-hoc scripts that used to
regenerate ``tests/golden``; these tests pin that the manager writes the
*exact historical byte format* (an unchanged engine regenerates byte-for-
byte identical files) and that ``check`` reports differences usefully.
"""

import filecmp
import json
import os

import pytest

from repro.validate import check_goldens, regen_goldens
from repro.validate.goldens import (
    GOLDEN_POLICIES,
    QOS_GOLDEN_SCENARIOS,
    compute_golden,
    compute_qos_golden,
    default_golden_dir,
    golden_path,
    qos_golden_path,
    reference_workload,
)


def test_default_golden_dir_is_the_repo_checkout():
    d = default_golden_dir()
    assert os.path.isdir(d)
    assert os.path.basename(d) == "golden"
    assert os.path.exists(golden_path("mps"))


def test_check_current_engine_matches_snapshots():
    problems = check_goldens()
    assert problems == {}, (
        "engine diverged from golden snapshots: %r" % problems)


def test_regen_is_byte_identical_for_unchanged_engine(tmp_path):
    written = regen_goldens(golden_dir=str(tmp_path))
    assert len(written) == len(GOLDEN_POLICIES) + len(QOS_GOLDEN_SCENARIOS)
    for policy in GOLDEN_POLICIES:
        fresh = golden_path(policy, str(tmp_path))
        checked_in = golden_path(policy)
        assert filecmp.cmp(fresh, checked_in, shallow=False), (
            "regen-goldens no longer reproduces the checked-in bytes for "
            "policy %r" % policy)
    for scenario in QOS_GOLDEN_SCENARIOS:
        fresh = qos_golden_path(scenario, str(tmp_path))
        checked_in = qos_golden_path(scenario)
        assert filecmp.cmp(fresh, checked_in, shallow=False), (
            "regen-goldens no longer reproduces the checked-in bytes for "
            "QoS scenario %r" % scenario)


def test_check_reports_missing_snapshot(tmp_path):
    problems = check_goldens(golden_dir=str(tmp_path),
                             policies=("mps",), qos_scenarios=())
    assert "missing snapshot" in problems["mps"]


def test_check_localises_a_difference(tmp_path):
    config, streams = reference_workload()
    tree = compute_golden("mps", config, streams)
    tree["cycles"] += 1
    path = golden_path("mps", str(tmp_path))
    with open(path, "w", encoding="utf-8") as f:
        json.dump(tree, f, indent=1, sort_keys=True)
    problems = check_goldens(golden_dir=str(tmp_path), policies=("mps",),
                             qos_scenarios=())
    assert "$.cycles" in problems["mps"]


def test_check_localises_a_qos_difference(tmp_path):
    tree = compute_qos_golden("steady")
    tree["total_cycles"] += 1
    path = qos_golden_path("steady", str(tmp_path))
    with open(path, "w", encoding="utf-8") as f:
        json.dump(tree, f, indent=1, sort_keys=True)
    problems = check_goldens(golden_dir=str(tmp_path), policies=(),
                             qos_scenarios=("steady",))
    assert "$.total_cycles" in problems["qos:steady"]


def test_qos_golden_reports_missing_snapshot(tmp_path):
    problems = check_goldens(golden_dir=str(tmp_path), policies=(),
                             qos_scenarios=("bursty",))
    assert "missing snapshot" in problems["qos:bursty"]


@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
def test_snapshot_format_is_canonical(policy):
    """sorted keys, indent=1, no trailing newline — diffs stay reviewable."""
    with open(golden_path(policy), "r", encoding="utf-8") as f:
        raw = f.read()
    assert raw == json.dumps(json.loads(raw), indent=1, sort_keys=True)


@pytest.mark.parametrize("scenario", QOS_GOLDEN_SCENARIOS)
def test_qos_snapshot_format_is_canonical(scenario):
    with open(qos_golden_path(scenario), "r", encoding="utf-8") as f:
        raw = f.read()
    assert raw == json.dumps(json.loads(raw), indent=1, sort_keys=True)
    tree = json.loads(raw)
    # The QoS goldens keep the per-frame events: ordering is pinned too.
    assert tree["kind"] == "qos-report" and tree["events"]
