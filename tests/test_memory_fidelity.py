"""Tests for the memory-model fidelity features: the L1/shared-memory
carveout, dirty write-backs, MSHR back-pressure, and scheduler policies."""

import pytest

from repro.config import CacheConfig, RTX_3070_MINI
from repro.isa import (
    CTATrace,
    DataClass,
    KernelTrace,
    MemAccess,
    Op,
    WarpInstruction,
    WarpTrace,
)
from repro.memory import L2Cache, SetAssocCache
from repro.timing import GPU, GPUStats, LDSTPath, SM, simulate


class TestUsableWays:
    def cache(self):
        return SetAssocCache(CacheConfig(size_bytes=8 * 4 * 128, assoc=4))

    def test_validates_range(self):
        c = self.cache()
        with pytest.raises(ValueError):
            c.set_usable_ways(0)
        with pytest.raises(ValueError):
            c.set_usable_ways(5)

    def test_shrinking_reduces_capacity(self):
        c = self.cache()
        c.set_usable_ways(1)
        # Two lines in the same set now evict each other.
        for addr in (0, 8 * 128):
            hit, _ = c.access(addr, 0, DataClass.COMPUTE, 0)
            if not hit:
                c.fill(addr, DataClass.COMPUTE, 0)
        hit, _ = c.access(0, 0, DataClass.COMPUTE, 0)
        assert not hit

    def test_growing_back_restores(self):
        c = self.cache()
        c.set_usable_ways(1)
        c.set_usable_ways(4)
        for addr in (0, 8 * 128):
            hit, _ = c.access(addr, 0, DataClass.COMPUTE, 0)
            if not hit:
                c.fill(addr, DataClass.COMPUTE, 0)
        hit, _ = c.access(0, 0, DataClass.COMPUTE, 0)
        assert hit


class TestCarveout:
    def make_path(self):
        stats = GPUStats()
        return LDSTPath(0, RTX_3070_MINI, L2Cache(RTX_3070_MINI), stats)

    def test_array_covers_l1_plus_smem(self):
        p = self.make_path()
        expected_min = (RTX_3070_MINI.l1.size_bytes
                        + RTX_3070_MINI.shared_mem_per_sm)
        assert p.l1.config.size_bytes >= expected_min * 0.9

    def test_zero_smem_gives_full_array(self):
        p = self.make_path()
        p.update_carveout(0)
        assert p.l1.usable_ways == p.l1.assoc

    def test_smem_use_shrinks_cache(self):
        p = self.make_path()
        full = p.l1.assoc
        p.update_carveout(64 * 1024)
        assert p.l1.usable_ways < full
        p.update_carveout(0)
        assert p.l1.usable_ways == full

    def test_never_below_one_way(self):
        p = self.make_path()
        p.update_carveout(10 ** 9)
        assert p.l1.usable_ways >= 1

    def test_sm_updates_carveout_on_launch_and_free(self):
        stats = GPUStats()
        sm = SM(0, RTX_3070_MINI, L2Cache(RTX_3070_MINI), stats)
        full_ways = sm.ldst.l1.usable_ways
        wt = WarpTrace([WarpInstruction(Op.EXIT)])
        k = KernelTrace("smem", [CTATrace([wt])], threads_per_cta=32,
                        shared_mem_per_cta=48 * 1024)
        sm.launch_cta(k, k.ctas[0], stream=0)
        assert sm.ldst.l1.usable_ways < full_ways
        cycle = 0
        while sm.has_work:
            sm.process_completions(cycle)
            sm.tick(cycle)
            cycle += 1
        assert sm.ldst.l1.usable_ways == full_ways


class TestDirtyWriteback:
    def test_l2_dirty_eviction_writes_dram(self):
        cfg = RTX_3070_MINI.replace(
            l2=CacheConfig(size_bytes=16 * 1024, assoc=2, hit_latency=120),
            l2_banks=1)
        l2 = L2Cache(cfg)
        # Dirty one line, then stream enough lines through its set to
        # evict it.
        l2.access(0, 0, DataClass.COMPUTE, 0, is_store=True)
        writes_before = l2.dram.stats[0].writes
        sets = l2.sets_per_bank
        for i in range(1, 4):
            l2.access(i * sets * 128, 100 * i, DataClass.COMPUTE, 0)
        assert l2.dram.stats[0].writes > writes_before

    def test_clean_eviction_no_writeback(self):
        cfg = RTX_3070_MINI.replace(
            l2=CacheConfig(size_bytes=16 * 1024, assoc=2, hit_latency=120),
            l2_banks=1)
        l2 = L2Cache(cfg)
        l2.access(0, 0, DataClass.COMPUTE, 0)  # clean load
        sets = l2.sets_per_bank
        for i in range(1, 4):
            l2.access(i * sets * 128, 100 * i, DataClass.COMPUTE, 0)
        # Only the store-allocates count as writes; loads evicting clean
        # lines add none.
        assert l2.dram.stats[0].writes == 0


class TestMSHRPressure:
    def test_mshr_limit_delays_bursts(self):
        tight = RTX_3070_MINI.replace(
            l1=CacheConfig(size_bytes=128 * 1024, assoc=8, mshr_entries=2,
                           hit_latency=30))
        loose = RTX_3070_MINI

        def burst_kernel():
            wt = WarpTrace()
            for i in range(16):
                wt.append(WarpInstruction(
                    Op.LDG, dst=4 + i % 8,
                    mem=MemAccess([i * 4096 * 128], DataClass.COMPUTE)))
            wt.append(WarpInstruction(Op.EXIT))
            return KernelTrace("burst", [CTATrace([wt])], threads_per_cta=32)

        t_tight = simulate(tight, {0: [burst_kernel()]}).cycles
        t_loose = simulate(loose, {0: [burst_kernel()]}).cycles
        assert t_tight > t_loose


class TestSchedulerPolicies:
    def test_config_validates_policy(self):
        with pytest.raises(ValueError):
            RTX_3070_MINI.replace(scheduler_policy="random")

    def test_lrr_runs_to_completion(self):
        from repro.compute import build_vio_kernels
        cfg = RTX_3070_MINI.replace(scheduler_policy="lrr")
        stats = simulate(cfg, {0: build_vio_kernels()})
        assert stats.stream(0).kernels_completed > 0

    def test_lrr_rotates_across_warps(self):
        from repro.timing import GTOScheduler, SchedulerUnits
        from repro.timing.warp import WarpContext

        class _CTA:
            pass

        s = GTOScheduler(0, SchedulerUnits(), policy="lrr")
        warps = []
        for wid in range(3):
            # Hazard-free streams: every warp is always ready.
            wt = WarpTrace([WarpInstruction(Op.FFMA, dst=8 + wid * 8 + i)
                            for i in range(4)])
            w = WarpContext(wt, 0, _CTA(), warp_id=wid, state=s.state)
            warps.append(w)
            s.add_warp(w)
        order = []
        for cycle in range(6):
            slot = s.pick(cycle)
            assert slot >= 0
            w = s.state.warps[slot]
            w.commit_issue(w.peek(), cycle, cycle + 4)
            s.note_issued(slot, cycle + 1)
            order.append(w.warp_id)
        # Round robin: no warp issues twice before the others issue once.
        assert order[:3] in ([0, 1, 2], [1, 2, 0], [2, 0, 1])
        assert order[3:6] == order[:3]

    def test_gto_and_lrr_both_deterministic(self):
        from repro.compute import build_hologram_kernels
        for pol in ("gto", "lrr"):
            cfg = RTX_3070_MINI.replace(scheduler_policy=pol)
            a = simulate(cfg, {0: build_hologram_kernels(passes=1)}).cycles
            b = simulate(cfg, {0: build_hologram_kernels(passes=1)}).cycles
            assert a == b
