"""Smoke tests: every example script runs to completion.

Examples are deliverables; these tests keep them working as the library
evolves (small parameters keep the suite fast).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=180):
    path = os.path.join(EXAMPLES, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "frame time" in out
        assert "IPC" in out

    def test_concurrent_xr(self):
        out = run_example("concurrent_xr.py")
        assert "Concurrent" in out
        assert "speedup" in out

    def test_partition_study(self):
        out = run_example("partition_study.py", "--scene", "SPL",
                          "--compute", "VIO", "--res", "2k")
        assert "mps" in out
        assert "tap" in out

    def test_mipmap_study(self):
        out = run_example("mipmap_study.py")
        assert "inflation without mipmapping" in out

    def test_animation(self):
        out = run_example("animation.py", "--frames", "2")
        assert "swapchain-pipelined" in out

    def test_shadow_study(self):
        out = run_example("shadow_study.py")
        assert "shadow pass" in out

    def test_render_scenes(self, tmp_path):
        out = run_example("render_scenes.py", "--out", str(tmp_path))
        assert "SPL" in out
        written = list(tmp_path.glob("*.ppm"))
        assert len(written) == 6
