"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.isa import DataClass
from repro.memory import SetAssocCache, SetPartition, WayPartition


def small_cache(assoc=4, sets=8):
    return SetAssocCache(
        CacheConfig(size_bytes=sets * assoc * 128, assoc=assoc), "t")


def load(cache, addr, stream=0):
    hit, merged = cache.access(addr, 0, DataClass.COMPUTE, stream)
    if not hit and not merged:
        cache.fill(addr, DataClass.COMPUTE, stream)
    return hit


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not load(c, 0)
        assert load(c, 0)

    def test_distinct_lines_independent(self):
        c = small_cache()
        load(c, 0)
        assert not load(c, 128)

    def test_lru_evicts_oldest(self):
        c = small_cache(assoc=2, sets=1)
        load(c, 0)
        load(c, 128)
        load(c, 0)        # refresh line 0
        load(c, 256)      # evicts 128 (LRU)
        assert load(c, 0)
        assert not load(c, 128)

    def test_capacity_respected(self):
        c = small_cache(assoc=2, sets=2)
        for i in range(16):
            load(c, i * 128)
        valid = sum(n for n in c.composition().values())
        assert valid <= 4

    def test_probe_does_not_mutate(self):
        c = small_cache()
        assert not c.probe(0)
        load(c, 0)
        before = c.stats[0].accesses
        assert c.probe(0)
        assert c.stats[0].accesses == before

    def test_store_marks_dirty_on_hit(self):
        c = small_cache()
        load(c, 0)
        hit, _ = c.access(0, 0, DataClass.COMPUTE, 0, is_store=True)
        assert hit

    def test_flush_clears_everything(self):
        c = small_cache()
        load(c, 0)
        c.flush()
        assert not c.probe(0)
        assert c.occupancy() == 0.0


class TestStats:
    def test_hit_rate(self):
        c = small_cache()
        load(c, 0)
        load(c, 0)
        load(c, 0)
        st0 = c.stats[0]
        assert st0.accesses == 3
        assert st0.hits == 2
        assert st0.hit_rate == pytest.approx(2 / 3)

    def test_per_stream_stats_separate(self):
        c = small_cache()
        load(c, 0, stream=0)
        load(c, 4096, stream=1)
        assert c.stats[0].accesses == 1
        assert c.stats[1].accesses == 1

    def test_aggregate_sums(self):
        c = small_cache()
        load(c, 0, stream=0)
        load(c, 4096, stream=1)
        assert c.aggregate_stats().accesses == 2

    def test_eviction_counted(self):
        c = small_cache(assoc=1, sets=1)
        load(c, 0)
        load(c, 128)
        total = c.aggregate_stats()
        assert total.evictions == 1


class TestComposition:
    def test_composition_by_class(self):
        c = small_cache()
        c.access(0, 0, DataClass.TEXTURE, 0)
        c.fill(0, DataClass.TEXTURE, 0)
        c.access(128, 0, DataClass.COMPUTE, 1)
        c.fill(128, DataClass.COMPUTE, 1)
        comp = c.composition()
        assert comp[DataClass.TEXTURE] == 1
        assert comp[DataClass.COMPUTE] == 1

    def test_composition_by_stream(self):
        c = small_cache()
        load(c, 0, stream=7)
        assert c.composition_by_stream() == {7: 1}


class TestMSHR:
    def test_pending_merge(self):
        c = small_cache()
        c.access(0, 0, DataClass.COMPUTE, 0)
        c.note_pending(0, ready_cycle=500)
        hit, merged = c.access(0, 10, DataClass.COMPUTE, 0)
        assert not hit and merged
        assert c.pending_ready(0) == 500
        c.complete_pending(0)
        assert c.pending_ready(0) is None

    def test_mshr_free_limit(self):
        cfg = CacheConfig(size_bytes=4096, assoc=4, mshr_entries=2)
        c = SetAssocCache(cfg)
        c.note_pending(0, 10)
        assert c.mshr_free
        c.note_pending(128, 10)
        assert not c.mshr_free


class TestSetPartition:
    def test_ranges_disjoint(self):
        p = SetPartition(8, {0: 6, 1: 2})
        sets0 = {p.map_set(0, s) for s in range(100)}
        sets1 = {p.map_set(1, s) for s in range(100)}
        assert sets0 == set(range(6))
        assert sets1 == {6, 7}

    def test_unknown_stream_uses_full_cache(self):
        p = SetPartition(8, {0: 4})
        assert p.map_set(9, 7) == 7

    def test_rejects_overcommit(self):
        with pytest.raises(ValueError):
            SetPartition(8, {0: 6, 1: 4})

    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            SetPartition(8, {0: 0, 1: 8})

    def test_partitioned_streams_do_not_evict_each_other(self):
        c = small_cache(assoc=1, sets=8)
        c.partition_sets({0: 4, 1: 4})
        # Stream 0 and 1 walk the same addresses (raw sets 0..3); with
        # partitioning they land in disjoint set ranges.
        for i in range(4):
            load(c, i * 128, stream=0)
        for i in range(4):
            load(c, i * 128, stream=1)
        # Stream 0's lines must still be resident.
        assert all(load(c, i * 128, stream=0) for i in range(4))

    def test_sets_for(self):
        p = SetPartition(8, {0: 5, 1: 3})
        assert p.sets_for(0) == 5
        assert p.sets_for(1) == 3
        assert p.sets_for(5) == 8


class TestWayPartition:
    def test_rejects_overcommit(self):
        with pytest.raises(ValueError):
            WayPartition(4, {0: 3, 1: 2})

    def test_ways_disjoint(self):
        p = WayPartition(4, {0: 3, 1: 1})
        assert list(p.ways_for(0)) == [0, 1, 2]
        assert list(p.ways_for(1)) == [3]

    def test_way_partition_isolates(self):
        c = small_cache(assoc=2, sets=1)
        c.partition_ways({0: 1, 1: 1})
        load(c, 0, stream=0)
        load(c, 128, stream=1)
        load(c, 256, stream=1)   # evicts stream 1's line only
        assert load(c, 0, stream=0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=200))
def test_property_occupancy_bounded_and_rehit(ops):
    """Whatever the access pattern: occupancy <= 1 and a just-filled line
    hits immediately after."""
    c = small_cache(assoc=2, sets=4)
    for line_idx, is_store in ops:
        addr = line_idx * 128
        hit, merged = c.access(addr, 0, DataClass.COMPUTE, 0, is_store)
        if not hit and not merged:
            c.fill(addr, DataClass.COMPUTE, 0)
        assert c.probe(addr)
        assert 0.0 <= c.occupancy() <= 1.0
