"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.isa import DataClass
from repro.memory import SetAssocCache, SetPartition, WayPartition


def small_cache(assoc=4, sets=8):
    return SetAssocCache(
        CacheConfig(size_bytes=sets * assoc * 128, assoc=assoc), "t")


def load(cache, addr, stream=0):
    hit, merged = cache.access(addr, 0, DataClass.COMPUTE, stream)
    if not hit and not merged:
        cache.fill(addr, DataClass.COMPUTE, stream)
    return hit


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not load(c, 0)
        assert load(c, 0)

    def test_distinct_lines_independent(self):
        c = small_cache()
        load(c, 0)
        assert not load(c, 128)

    def test_lru_evicts_oldest(self):
        c = small_cache(assoc=2, sets=1)
        load(c, 0)
        load(c, 128)
        load(c, 0)        # refresh line 0
        load(c, 256)      # evicts 128 (LRU)
        assert load(c, 0)
        assert not load(c, 128)

    def test_capacity_respected(self):
        c = small_cache(assoc=2, sets=2)
        for i in range(16):
            load(c, i * 128)
        valid = sum(n for n in c.composition().values())
        assert valid <= 4

    def test_probe_does_not_mutate(self):
        c = small_cache()
        assert not c.probe(0)
        load(c, 0)
        before = c.stats[0].accesses
        assert c.probe(0)
        assert c.stats[0].accesses == before

    def test_store_marks_dirty_on_hit(self):
        c = small_cache()
        load(c, 0)
        hit, _ = c.access(0, 0, DataClass.COMPUTE, 0, is_store=True)
        assert hit

    def test_flush_clears_everything(self):
        c = small_cache()
        load(c, 0)
        c.flush()
        assert not c.probe(0)
        assert c.occupancy() == 0.0


class TestStats:
    def test_hit_rate(self):
        c = small_cache()
        load(c, 0)
        load(c, 0)
        load(c, 0)
        st0 = c.stats[0]
        assert st0.accesses == 3
        assert st0.hits == 2
        assert st0.hit_rate == pytest.approx(2 / 3)

    def test_per_stream_stats_separate(self):
        c = small_cache()
        load(c, 0, stream=0)
        load(c, 4096, stream=1)
        assert c.stats[0].accesses == 1
        assert c.stats[1].accesses == 1

    def test_aggregate_sums(self):
        c = small_cache()
        load(c, 0, stream=0)
        load(c, 4096, stream=1)
        assert c.aggregate_stats().accesses == 2

    def test_eviction_counted(self):
        c = small_cache(assoc=1, sets=1)
        load(c, 0)
        load(c, 128)
        total = c.aggregate_stats()
        assert total.evictions == 1


class TestComposition:
    def test_composition_by_class(self):
        c = small_cache()
        c.access(0, 0, DataClass.TEXTURE, 0)
        c.fill(0, DataClass.TEXTURE, 0)
        c.access(128, 0, DataClass.COMPUTE, 1)
        c.fill(128, DataClass.COMPUTE, 1)
        comp = c.composition()
        assert comp[DataClass.TEXTURE] == 1
        assert comp[DataClass.COMPUTE] == 1

    def test_composition_by_stream(self):
        c = small_cache()
        load(c, 0, stream=7)
        assert c.composition_by_stream() == {7: 1}


class TestMSHR:
    def test_pending_merge(self):
        c = small_cache()
        c.access(0, 0, DataClass.COMPUTE, 0)
        c.note_pending(0, ready_cycle=500)
        hit, merged = c.access(0, 10, DataClass.COMPUTE, 0)
        assert not hit and merged
        assert c.pending_ready(0) == 500
        c.complete_pending(0)
        assert c.pending_ready(0) is None

    def test_mshr_free_limit(self):
        cfg = CacheConfig(size_bytes=4096, assoc=4, mshr_entries=2)
        c = SetAssocCache(cfg)
        c.note_pending(0, 10)
        assert c.mshr_free
        c.note_pending(128, 10)
        assert not c.mshr_free


class TestSetPartition:
    def test_ranges_disjoint(self):
        p = SetPartition(8, {0: 6, 1: 2})
        sets0 = {p.map_set(0, s) for s in range(100)}
        sets1 = {p.map_set(1, s) for s in range(100)}
        assert sets0 == set(range(6))
        assert sets1 == {6, 7}

    def test_unknown_stream_uses_full_cache(self):
        p = SetPartition(8, {0: 4})
        assert p.map_set(9, 7) == 7

    def test_rejects_overcommit(self):
        with pytest.raises(ValueError):
            SetPartition(8, {0: 6, 1: 4})

    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            SetPartition(8, {0: 0, 1: 8})

    def test_partitioned_streams_do_not_evict_each_other(self):
        c = small_cache(assoc=1, sets=8)
        c.partition_sets({0: 4, 1: 4})
        # Stream 0 and 1 walk the same addresses (raw sets 0..3); with
        # partitioning they land in disjoint set ranges.
        for i in range(4):
            load(c, i * 128, stream=0)
        for i in range(4):
            load(c, i * 128, stream=1)
        # Stream 0's lines must still be resident.
        assert all(load(c, i * 128, stream=0) for i in range(4))

    def test_sets_for(self):
        p = SetPartition(8, {0: 5, 1: 3})
        assert p.sets_for(0) == 5
        assert p.sets_for(1) == 3
        assert p.sets_for(5) == 8


class TestWayPartition:
    def test_rejects_overcommit(self):
        with pytest.raises(ValueError):
            WayPartition(4, {0: 3, 1: 2})

    def test_ways_disjoint(self):
        p = WayPartition(4, {0: 3, 1: 1})
        assert list(p.ways_for(0)) == [0, 1, 2]
        assert list(p.ways_for(1)) == [3]

    def test_way_partition_isolates(self):
        c = small_cache(assoc=2, sets=1)
        c.partition_ways({0: 1, 1: 1})
        load(c, 0, stream=0)
        load(c, 128, stream=1)
        load(c, 256, stream=1)   # evicts stream 1's line only
        assert load(c, 0, stream=0)


class TestResolvedMappingTables:
    """The access fast path replaces SetPartition.map_set with per-stream
    tables installed at partition_sets time; these pin the table semantics
    against the reference map_set."""

    def test_tables_match_map_set(self):
        p = SetPartition(8, {0: 5, 1: 3})
        tables = p.mapping_tables()
        for stream in (0, 1):
            for raw in range(8):
                assert tables[stream][raw] == p.map_set(stream, raw)

    def test_absent_stream_has_no_table(self):
        p = SetPartition(8, {0: 4})
        assert 9 not in p.mapping_tables()

    def test_absent_stream_identity_via_cache(self):
        # A stream outside the ratio map must see the full, unremapped
        # cache even while a partition is installed.
        c = small_cache(assoc=1, sets=8)
        c.partition_sets({0: 4, 1: 4})
        for i in range(8):
            load(c, i * 128, stream=9)
        assert all(load(c, i * 128, stream=9) for i in range(8))

    def test_single_set_range(self):
        p = SetPartition(8, {0: 1, 1: 7})
        table = p.mapping_tables()[0]
        assert table == [0] * 8
        c = small_cache(assoc=1, sets=8)
        c.partition_sets({0: 1, 1: 7})
        # Every stream-0 line maps to the same set: each load evicts the
        # previous one under assoc=1.
        load(c, 0, stream=0)
        load(c, 128, stream=0)
        assert not load(c, 0, stream=0)

    def test_repartition_rebuilds_tables(self):
        # TAP re-points ranges at runtime by calling partition_sets again;
        # the resolved tables must follow, not keep the stale geometry.
        c = small_cache(assoc=1, sets=8)
        c.partition_sets({0: 6, 1: 2})
        first = dict(c._set_map)
        c.partition_sets({0: 2, 1: 6})
        second = c._set_map
        assert first[0] != second[0]
        assert set(second[0]) == set(range(2))
        assert set(second[1]) == set(range(2, 8))

    def test_clear_partition_restores_identity(self):
        c = small_cache(assoc=1, sets=8)
        c.partition_sets({0: 2, 1: 2})
        c.partition_sets(None)
        assert c.set_partition is None
        assert c._set_map == {}
        for i in range(8):
            load(c, i * 128, stream=0)
        assert all(load(c, i * 128, stream=0) for i in range(8))

    def test_non_power_of_two_geometry_falls_back(self):
        # 3 sets defeats the shift/mask fast path; the divide/mod fallback
        # must agree with partitioned behaviour.
        cfg = CacheConfig(size_bytes=3 * 2 * 128, assoc=2)
        c = SetAssocCache(cfg, "odd")
        assert c.num_sets == 3
        assert c._line_shift is None
        c.partition_sets({0: 1, 1: 2})
        load(c, 0, stream=0)
        load(c, 128, stream=0)
        load(c, 256, stream=0)   # all three collapse to stream 0's one set
        comp = c.composition_by_stream()
        assert comp.get(0, 0) <= 2  # bounded by assoc within a single set


class TestWayPartitionEdgeCases:
    def test_absent_stream_uses_all_ways(self):
        p = WayPartition(4, {0: 2})
        assert list(p.ways_for(7)) == [0, 1, 2, 3]

    def test_single_way_range(self):
        c = small_cache(assoc=4, sets=1)
        c.partition_ways({0: 1, 1: 3})
        load(c, 0, stream=0)
        load(c, 128, stream=0)   # evicts the only stream-0 way
        assert not load(c, 0, stream=0)  # 128 evicted it; this refills 0
        assert load(c, 0, stream=0)
        # Stream 1's three ways were never touched by the churn above.
        load(c, 256, stream=1)
        assert load(c, 256, stream=1)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            WayPartition(4, {0: 0, 1: 4})

    def test_clear_way_partition(self):
        c = small_cache(assoc=2, sets=1)
        c.partition_ways({0: 1, 1: 1})
        c.partition_ways(None)
        assert c.way_partition is None
        load(c, 0, stream=0)
        load(c, 128, stream=0)
        assert load(c, 0, stream=0)  # both ways usable again


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=200))
def test_property_occupancy_bounded_and_rehit(ops):
    """Whatever the access pattern: occupancy <= 1 and a just-filled line
    hits immediately after."""
    c = small_cache(assoc=2, sets=4)
    for line_idx, is_store in ops:
        addr = line_idx * 128
        hit, merged = c.access(addr, 0, DataClass.COMPUTE, 0, is_store)
        if not hit and not merged:
            c.fill(addr, DataClass.COMPUTE, 0)
        assert c.probe(addr)
        assert 0.0 <= c.occupancy() <= 1.0
