"""Property tests for speculative epoch state management.

Speculation's whole contract is that checkpoint/rollback is *observably
invisible*: a shard that speculates, rolls back and re-executes must
land bit-identically on the serial timeline.  These tests police the
state-capture machinery directly (fabric snapshot/restore round-trips,
id-counter rewind, the prepatched stash) and then the full engines under
the forced-rollback injection hook
(``repro.parallel.fabric.FORCE_ROLLBACK_EVERY``), which fires the
rollback path orders of magnitude more often than organic patch traffic
would — including on telemetry-on runs, where the recorded run log and
trace events must also stay byte-identical.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import simulate
from repro.compute import DeviceMemory, KernelBuilder
from repro.config import get_preset
from repro.parallel import ExecutionPlan
from repro.parallel import fabric as fabric_mod
from repro.parallel.fabric import AUX_ID_OFFSET, ShardFabric
from repro.parallel.worker import fork_available


@pytest.fixture(autouse=True)
def _disarm_hook():
    """Every test leaves the injection hook the way it found it."""
    prior = fabric_mod.FORCE_ROLLBACK_EVERY
    yield
    fabric_mod.FORCE_ROLLBACK_EVERY = prior


def _armed(n: int) -> None:
    fabric_mod.FORCE_ROLLBACK_EVERY = n


def _canonical(stats) -> dict:
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


# -- fabric snapshot/restore -------------------------------------------------

def _fresh_fabric() -> ShardFabric:
    fab = ShardFabric(get_preset("JetsonOrin-mini"))
    fab.cycle = 10
    fab.sm_id = 0
    return fab


def _defer(fab: ShardFabric, line: int):
    return fab.defer_load(None, "load", line, fab.cycle + fab.icnt,
                          None, 0, 0, None)


def _observable(fab: ShardFabric) -> tuple:
    return (fab._next_id, fab._next_aux, len(fab.log),
            sorted(fab.unresolved), sorted(fab.issue_records),
            {s: (r.remaining, r.local_done)
             for s, r in fab.issue_records.items()})


class TestFabricRoundTrip:
    def test_snapshot_restore_is_identity(self):
        fab = _fresh_fabric()
        a = _defer(fab, 1)
        b = _defer(fab, 2)
        fab.make_issue([a, b], local_done=12)
        fab.record_store(3, fab.cycle + fab.icnt, None, 0)
        before = _observable(fab)
        snap = fab.snapshot()

        # Speculative progress: more ops, a merge child, an issue record.
        fab.cycle = 20
        c = _defer(fab, 4)
        fab.merge_load(a, probe_done=21)
        fab.make_issue([c], local_done=22)
        fab.record_store(5, fab.cycle + fab.icnt, None, 1)
        assert _observable(fab) != before

        fab.restore(snap)
        assert _observable(fab) == before
        # The merge child attached during speculation is truncated too.
        assert a.mergers == []

    def test_id_counters_rewind_for_reexecution(self):
        """After a rollback, re-executing the same op sequence must
        re-allocate the same ids — the probe-replay prefix match and the
        patch routing both key on them."""
        fab = _fresh_fabric()
        _defer(fab, 1)
        snap = fab.snapshot()
        first = _defer(fab, 2)
        fab.merge_load(first, probe_done=11)
        fab.restore(snap)
        again = _defer(fab, 2)
        assert again.op_id == first.op_id
        assert again.sentinel == first.sentinel

    def test_aux_ids_stay_off_the_logged_counter(self):
        """Merge/issue ids live in their own range: interleaving them
        must not shift the ids of logged ops (id determinism across an
        interrupted tick's re-execution with pre-resolved accesses)."""
        plain = _fresh_fabric()
        p1, p2 = _defer(plain, 1), _defer(plain, 2)

        mixed = _fresh_fabric()
        m1 = _defer(mixed, 1)
        mixed.merge_load(m1, probe_done=11)     # aux, not logged
        mixed.make_issue([m1], local_done=12)   # aux, not logged
        m2 = _defer(mixed, 2)
        assert (m1.op_id, m2.op_id) == (p1.op_id, p2.op_id)
        assert mixed._next_aux == 2 and plain._next_aux == 0
        assert m2.op_id < AUX_ID_OFFSET

    def test_prepatched_stash_survives_restore(self):
        """A patch for an op that rolled back with its interrupted tick
        is stashed, and the stash must survive the restore that follows
        — the re-executed tick resolves from it."""
        fab = _fresh_fabric()
        snap = fab.snapshot()
        fab.apply_patches([(999_999, 700)])
        assert fab.prepatched[999_999] == 700
        fab.restore(snap)
        assert fab.prepatched[999_999] == 700


# -- engine-level forced-rollback properties ---------------------------------

def _workload(grid: int = 6, fp: int = 8, words: int = 2,
              pattern: str = "coalesced"):
    config = get_preset("JetsonOrin-mini")
    streams = {}
    for sid in range(2):
        mem = DeviceMemory(region=8 + sid)
        kb = KernelBuilder("spec%d" % sid, grid=grid, block=32,
                           regs_per_thread=16)
        buf = mem.buffer("a", 32 * 1024)
        for _ in range(3):
            kb.load(buf, pattern=pattern, words=words)
            kb.fp(fp)
        streams[sid] = [kb.build()]
    return config, streams


def _mixed_workload(fp_heavy: int = 400, nloads: int = 3, grid: int = 4):
    """Two memory-bound streams plus two compute-bound streams.

    Stream-mode speculation engages only when a shard still has runnable
    compute past the memory horizon while another of its streams is
    parked on unresolved loads — a single-stream-per-shard workload just
    blocks on patches instead, so the stream-mode tests need this shape.
    """
    config = get_preset("JetsonOrin-mini")
    streams = {}
    for sid in range(2):
        mem = DeviceMemory(region=8 + sid)
        kb = KernelBuilder("mem%d" % sid, grid=grid, block=32,
                           regs_per_thread=16)
        buf = mem.buffer("a", 32 * 1024)
        for _ in range(nloads):
            kb.load(buf, pattern="coalesced", words=2)
            kb.fp(4)
        streams[sid] = [kb.build()]
    for sid in range(2, 4):
        mem = DeviceMemory(region=8 + sid)
        kb = KernelBuilder("fp%d" % sid, grid=grid, block=32,
                           regs_per_thread=16)
        kb.fp(fp_heavy)
        streams[sid] = [kb.build()]
    return config, streams


class TestForcedRollbackBitIdentity:
    @pytest.mark.parametrize("engine", ["sharded", "process"])
    def test_stream_mode(self, engine):
        if engine == "process" and not fork_available():
            pytest.skip("fork start method unavailable")
        config, streams = _mixed_workload()
        serial = simulate(config=config, streams=streams, policy="mps")
        _armed(3)
        stressed = simulate(config=config, streams=streams, policy="mps",
                            execution=ExecutionPlan(engine=engine,
                                                    workers=2, horizon=2))
        report = stressed.execution
        assert report.engaged and report.mode == "stream"
        assert report.spec_rollbacks > 0, (
            "injection hook never fired: %r" % report)
        assert _canonical(stressed.stats) == _canonical(serial.stats)

    def test_sm_mode(self):
        config, streams = _workload()
        serial = simulate(config=config, streams=streams, policy="fg-even")
        _armed(4)
        stressed = simulate(
            config=config, streams=streams, policy="fg-even",
            execution=ExecutionPlan(engine="sharded", workers=2,
                                    shard_by="sm", horizon=2))
        report = stressed.execution
        assert report.engaged and report.mode == "sm"
        assert report.spec_rollbacks > 0
        assert _canonical(stressed.stats) == _canonical(serial.stats)

    def test_sm_mode_telemetry_rewinds_cleanly(self, monkeypatch):
        """Rollbacks must not leak into the recorded run log or trace
        events: the telemetry cursors rewind with the shard state."""
        import time as _time
        monkeypatch.setattr(_time, "time", lambda: 1700000000.0)
        from repro.telemetry import Telemetry

        config, streams = _workload()
        logs = []
        for stress in (0, 5):
            _armed(stress)
            tel = Telemetry(sample_interval=200)
            result = simulate(
                config=config, streams=streams, policy="mps", telemetry=tel,
                execution=ExecutionPlan(engine="serial") if not stress
                else ExecutionPlan(engine="sharded", workers=2,
                                   shard_by="sm", horizon=2))
            logs.append((json.dumps(tel.runlog.records, sort_keys=True,
                                    default=str),
                         json.dumps(tel.sink.events, sort_keys=True,
                                    default=str),
                         _canonical(result.stats)))
            if stress:
                assert result.execution.engaged
        assert logs[0] == logs[1]

    @settings(max_examples=10, deadline=None)
    @given(grid=st.integers(2, 8), fp=st.integers(1, 10),
           words=st.integers(1, 2),
           pattern=st.sampled_from(("coalesced", "strided", "broadcast")),
           horizon=st.integers(1, 3), every=st.integers(2, 7))
    def test_any_rollback_cadence_is_invisible(self, grid, fp, words,
                                               pattern, horizon, every):
        """Property: for any small workload, speculation depth and
        injection cadence, the stressed sharded run is bit-identical."""
        config, streams = _workload(grid, fp, words, pattern)
        _armed(0)
        serial = simulate(config=config, streams=streams, policy="mps")
        _armed(every)
        stressed = simulate(config=config, streams=streams, policy="mps",
                            execution=ExecutionPlan(engine="sharded",
                                                    workers=2,
                                                    horizon=horizon))
        assert _canonical(stressed.stats) == _canonical(serial.stats)
