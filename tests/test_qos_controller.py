"""Unit tests for the adaptive partition controller.

The hill climber is driven here through hand-built observation dicts —
no simulation — so each mechanism (stress grants, cooldown, demand-shift
detection, drift hysteresis, dimension flipping, quota floors) is pinned
in isolation.
"""

import pytest

from repro.config import get_preset
from repro.isa import CTAResources
from repro.qos import HillClimbController, QoSMonitor
from repro.qos.controller import AdaptiveQoSPolicy


def obs(window, compute=None, l2=None, cycle=0):
    return {
        "epoch_cycle": cycle,
        "compute_shares": compute or {0: 4, 1: 4},
        "l2_shares": l2 or {0: 16, 1: 16},
        "window": window,
    }


def calm(budget=1_000, frames=2, frame_max=200, arrivals=0):
    return {"frames": frames, "violations": 0, "frame_sum": frames * 100,
            "frame_max": frame_max, "arrivals": arrivals,
            "slo_budget": budget}


def violating(budget=1_000, violations=2, frame_max=1_500, arrivals=0):
    return {"frames": 3, "violations": violations,
            "frame_sum": 3 * frame_max, "frame_max": frame_max,
            "arrivals": arrivals, "slo_budget": budget}


def best_effort(frames=3, arrivals=0):
    return {"frames": frames, "violations": 0, "frame_sum": frames * 400,
            "frame_max": 500, "arrivals": arrivals, "slo_budget": None}


class TestGrants:
    def test_violating_client_gets_compute_from_best_effort(self):
        c = HillClimbController()
        d = c.decide(obs({0: violating(), 1: best_effort()}))
        assert d == {"kind": "compute", "from": 1, "to": 0}

    def test_calm_windows_hold(self):
        c = HillClimbController()
        assert c.decide(obs({0: calm(), 1: best_effort()})) is None

    def test_idle_window_holds(self):
        c = HillClimbController()
        w = {0: calm(frames=0), 1: best_effort(frames=0)}
        assert c.decide(obs(w)) is None

    def test_near_miss_inside_headroom_triggers(self):
        c = HillClimbController(headroom=0.85)
        w = {0: calm(budget=1_000, frame_max=900), 1: best_effort()}
        d = c.decide(obs(w))
        assert d is not None and d["to"] == 0

    def test_no_grant_without_calm_donor(self):
        c = HillClimbController()
        w = {0: violating(), 1: violating(budget=500)}
        assert c.decide(obs(w)) is None

    def test_donor_respects_min_compute(self):
        c = HillClimbController(min_compute=2)
        w = {0: violating(), 1: best_effort()}
        assert c.decide(obs(w, compute={0: 6, 1: 2})) is None

    def test_cooldown_blocks_next_epoch(self):
        c = HillClimbController(settle_epochs=2)
        w = {0: violating(), 1: best_effort()}
        assert c.decide(obs(w)) is not None
        assert c.decide(obs(w, compute={0: 5, 1: 3})) is None
        assert c.decide(obs(w, compute={0: 5, 1: 3})) is None
        assert c.decide(obs(w, compute={0: 5, 1: 3})) is not None


class TestDimensionFlip:
    def test_flips_to_l2_when_compute_grant_backfires(self):
        c = HillClimbController(settle_epochs=0)
        w0 = {0: violating(violations=1, frame_max=1_100), 1: best_effort()}
        assert c.decide(obs(w0))["kind"] == "compute"
        # Stress clearly worse after the grant: same victim, higher score.
        w1 = {0: violating(violations=3, frame_max=1_600), 1: best_effort()}
        d = c.decide(obs(w1, compute={0: 5, 1: 3}))
        assert d["kind"] == "l2"

    def test_keeps_kind_while_improving(self):
        c = HillClimbController(settle_epochs=0)
        w0 = {0: violating(violations=3, frame_max=1_600), 1: best_effort()}
        assert c.decide(obs(w0))["kind"] == "compute"
        w1 = {0: violating(violations=1, frame_max=1_100), 1: best_effort()}
        assert c.decide(obs(w1, compute={0: 5, 1: 3}))["kind"] == "compute"


class TestDrift:
    def test_sustained_calm_drifts_back_toward_even(self):
        c = HillClimbController(calm_epochs=2)
        w = {0: calm(), 1: best_effort()}
        assert c.decide(obs(w, compute={0: 6, 1: 2})) is None
        d = c.decide(obs(w, compute={0: 6, 1: 2}))
        assert d == {"kind": "compute", "from": 0, "to": 1}

    def test_hysteresis_leaves_one_step_band(self):
        # 5/3 is within one give-back step of even: no drift, ever.
        c = HillClimbController(calm_epochs=1)
        w = {0: calm(), 1: best_effort()}
        for _ in range(6):
            assert c.decide(obs(w, compute={0: 5, 1: 3})) is None

    def test_punished_drift_backs_off(self):
        c = HillClimbController(calm_epochs=1, settle_epochs=0)
        w_calm = {0: calm(), 1: best_effort()}
        assert c.decide(obs(w_calm, compute={0: 6, 1: 2})) is not None
        # Stress right after the give-back: calm requirement doubles.
        w_bad = {0: violating(), 1: best_effort()}
        c.decide(obs(w_bad, compute={0: 5, 1: 3}))
        assert c._calm_required == 2
        # One calm epoch is no longer enough to drift again.
        assert c.decide(obs(w_calm, compute={0: 6, 1: 2})) is None


class TestDemandShift:
    def _warm(self, c, arrivals=2, epochs=6):
        w = {0: calm(arrivals=arrivals), 1: best_effort(arrivals=4)}
        for _ in range(epochs):
            assert c.decide(obs(w)) is None

    def test_rate_step_grants_before_any_violation(self):
        c = HillClimbController()
        self._warm(c)
        w = {0: calm(arrivals=5), 1: best_effort(arrivals=4)}
        d = c.decide(obs(w))
        assert d == {"kind": "compute", "from": 1, "to": 0}

    def test_one_shot_until_rearmed(self):
        c = HillClimbController(settle_epochs=0)
        self._warm(c)
        w = {0: calm(arrivals=5), 1: best_effort(arrivals=4)}
        assert c.decide(obs(w)) is not None
        # The sustained higher rate does not re-fire the detector.
        for _ in range(4):
            assert c.decide(obs(w, compute={0: 5, 1: 3})) is None

    def test_detector_unarmed_during_warmup(self):
        c = HillClimbController(rate_warmup_epochs=4)
        w = {0: calm(arrivals=2), 1: best_effort(arrivals=4)}
        assert c.decide(obs(w)) is None
        spike = {0: calm(arrivals=9), 1: best_effort(arrivals=4)}
        assert c.decide(obs(spike)) is None  # only 1 epoch of history

    def test_best_effort_clients_never_shift(self):
        c = HillClimbController()
        w = {0: calm(arrivals=2), 1: best_effort(arrivals=1)}
        for _ in range(6):
            assert c.decide(obs(w)) is None
        w2 = {0: calm(arrivals=2), 1: best_effort(arrivals=40)}
        assert c.decide(obs(w2)) is None


class TestAdaptivePolicy:
    def _policy(self, slots=None, floors=None):
        monitor = QoSMonitor()
        monitor.add_client("a")
        monitor.add_client("b")
        if slots is None:
            slots = {0: 4, 1: 4}
        return AdaptiveQoSPolicy(slots, monitor,
                                 {0: "a", 1: "b"}, floors=floors)

    def test_even_split_with_remainder(self):
        monitor = QoSMonitor()
        p = AdaptiveQoSPolicy.even(8, [0, 1, 2], monitor=monitor,
                                   stream_clients={})
        assert p.compute_slots == {0: 3, 1: 3, 2: 2}
        assert p.total_slots == 8

    def test_even_rejects_too_few_slots(self):
        with pytest.raises(ValueError):
            AdaptiveQoSPolicy.even(2, [0, 1, 2], monitor=QoSMonitor(),
                                   stream_clients={})

    def test_quota_scales_with_slots(self):
        config = get_preset("RTX3070-mini")
        p = self._policy({0: 6, 1: 2})
        qa = p.quota(None, 0, config)
        qb = p.quota(None, 1, config)
        assert qa.threads == config.max_threads_per_sm * 6 // 8
        assert qb.warps == config.max_warps_per_sm * 2 // 8
        assert p.quota(None, 99, config) is None

    def test_quota_floor_binds(self):
        config = get_preset("RTX3070-mini")
        big = CTAResources(threads=config.max_threads_per_sm,
                           registers=1, shared_mem=0, warps=1)
        p = self._policy({0: 6, 1: 2}, floors={1: big})
        q = p.quota(None, 1, config)
        # The floored resource is lifted to one CTA's worth; the others
        # keep their share-based value.
        assert q.threads == config.max_threads_per_sm
        assert q.warps == config.max_warps_per_sm * 2 // 8

    def test_apply_compute_moves_one_slot(self):
        p = self._policy({0: 4, 1: 4})
        p._apply({"kind": "compute", "from": 0, "to": 1})
        assert p.compute_slots == {0: 3, 1: 5}
        assert p.total_slots == 8

    def test_apply_rejects_last_slot_and_unknown_kind(self):
        p = self._policy({0: 1, 1: 7})
        with pytest.raises(ValueError):
            p._apply({"kind": "compute", "from": 0, "to": 1})
        with pytest.raises(ValueError):
            p._apply({"kind": "sm", "from": 0, "to": 1})

    def test_rejects_empty_and_zero_slots(self):
        with pytest.raises(ValueError):
            self._policy({})
        with pytest.raises(ValueError):
            self._policy({0: 0, 1: 8})
