"""Tests for the streaming SLO monitor.

The percentile recorder must be *exact* (nearest-rank against a sorted
reference) and chunk-order insensitive — the properties that keep QoS
reports bit-identical however completions interleave.
"""

import random

import pytest

from repro.qos import QoSMonitor, StreamingPercentiles


def nearest_rank(values, p):
    s = sorted(values)
    rank = max(1, -(-len(s) * p // 100))
    return s[int(rank) - 1]


class TestStreamingPercentiles:
    def test_exact_vs_sorted_reference(self):
        rng = random.Random(13)
        for trial in range(20):
            values = [rng.randrange(1, 10_000)
                      for _ in range(rng.randrange(1, 300))]
            sp = StreamingPercentiles()
            for v in values:
                sp.add(v)
            for p in (1, 25, 50, 90, 95, 99, 100):
                assert sp.percentile(p) == nearest_rank(values, p), \
                    "trial %d p%d" % (trial, p)

    def test_order_insensitive(self):
        values = list(range(1, 101))
        rng = random.Random(3)
        reference = None
        for _ in range(5):
            rng.shuffle(values)
            sp = StreamingPercentiles()
            for v in values:
                sp.add(v)
            tree = sp.to_dict()
            if reference is None:
                reference = tree
            assert tree == reference

    def test_interleaved_query_and_add(self):
        # Querying between adds (chunk boundaries) must not disturb later
        # results: the lazy sort cache has to invalidate on every add.
        sp = StreamingPercentiles()
        seen = []
        rng = random.Random(7)
        for i in range(200):
            v = rng.randrange(1, 1000)
            sp.add(v)
            seen.append(v)
            if i % 17 == 0:
                assert sp.percentile(95) == nearest_rank(seen, 95)
        assert sp.percentile(50) == nearest_rank(seen, 50)

    def test_empty_and_bounds(self):
        sp = StreamingPercentiles()
        assert sp.percentile(50) == 0
        assert sp.count == 0 and sp.mean == 0.0
        sp.add(5)
        with pytest.raises(ValueError):
            sp.percentile(0)
        with pytest.raises(ValueError):
            sp.percentile(101)

    def test_to_dict_summary(self):
        sp = StreamingPercentiles()
        for v in (10, 20, 30, 40):
            sp.add(v)
        d = sp.to_dict()
        assert d["count"] == 4 and d["min"] == 10 and d["max"] == 40
        assert d["mean"] == 25.0
        assert d["p50"] == 20


def _monitor_one_client(budget=None):
    m = QoSMonitor()
    m.add_client("c", slo_budget=budget)
    return m


class TestQoSMonitor:
    def test_frame_latency_from_last_kernel(self):
        m = _monitor_one_client(budget=100)
        m.track(1, "c", 0, arrival_cycle=10, last=False)
        m.track(2, "c", 0, arrival_cycle=10, last=True)
        m.on_kernel_complete(0, 1, "k0", 10, 50)
        m.on_kernel_complete(0, 2, "k1", 50, 90)
        s = m.client_summary("c")
        assert s["frame_time_cycles"]["count"] == 1
        assert s["frame_time_cycles"]["p50"] == 80
        # Both kernels feed the turnaround distribution.
        assert s["kernel_turnaround_cycles"]["count"] == 2

    def test_violation_counting_and_met(self):
        m = _monitor_one_client(budget=100)
        for req, (arrive, done) in enumerate(((0, 50), (100, 260), (300, 380))):
            m.track(10 + req, "c", req, arrival_cycle=arrive, last=True)
            m.on_kernel_complete(0, 10 + req, "k", arrive, done)
        s = m.client_summary("c")
        assert s["slo"]["violations"] == 1
        # Nearest-rank p95 of [50, 80, 160] is 160 > 100: SLO missed.
        assert not s["slo"]["met"]

    def test_warmup_requests_excluded(self):
        m = _monitor_one_client(budget=100)
        m.track(1, "c", 0, arrival_cycle=0, last=True, warmup=True)
        m.track(2, "c", 1, arrival_cycle=10, last=True)
        m.on_kernel_complete(0, 1, "k", 0, 900)   # would violate
        m.on_kernel_complete(0, 2, "k", 10, 60)
        s = m.client_summary("c")
        assert s["frame_time_cycles"]["count"] == 1
        assert s["slo"]["violations"] == 0 and s["slo"]["met"]
        # The warmup frame still produces an (annotated) event row.
        warm = [e for e in m.events if e.get("warmup")]
        assert len(warm) == 1 and warm[0]["frame_cycles"] == 900

    def test_untracked_kernels_ignored(self):
        m = _monitor_one_client()
        m.on_kernel_complete(0, 999, "stray", 0, 10)
        assert m.client_summary("c")["frame_time_cycles"]["count"] == 0

    def test_duplicate_uid_rejected(self):
        m = _monitor_one_client()
        m.track(1, "c", 0, arrival_cycle=0, last=True)
        with pytest.raises(ValueError):
            m.track(1, "c", 1, arrival_cycle=5, last=True)
        with pytest.raises(KeyError):
            m.track(2, "nobody", 0, arrival_cycle=0, last=True)
        with pytest.raises(ValueError):
            m.add_client("c")

    def test_take_window_resets_and_counts_arrivals(self):
        m = _monitor_one_client(budget=100)
        for req, arrive in enumerate((10, 30, 200)):
            m.track(req + 1, "c", req, arrival_cycle=arrive, last=True)
        m.on_kernel_complete(0, 1, "k", 10, 160)   # violated, frame 150
        w = m.take_window(cycle=100)
        assert w["c"]["frames"] == 1
        assert w["c"]["violations"] == 1
        assert w["c"]["frame_max"] == 150
        assert w["c"]["arrivals"] == 2          # arrivals at 10 and 30
        # Window state is consumed; the arrival pointer advances.
        w2 = m.take_window(cycle=250)
        assert w2["c"]["frames"] == 0 and w2["c"]["violations"] == 0
        assert w2["c"]["arrivals"] == 1         # the arrival at 200

    def test_slo_met_is_p95_based(self):
        # 19 fast frames + 1 slow one: p95 stays at the fast value, so a
        # single outlier does not flip the verdict.
        m = _monitor_one_client(budget=100)
        for req in range(20):
            m.track(req + 1, "c", req, arrival_cycle=0, last=True)
            m.on_kernel_complete(0, req + 1, "k", 0, 50 if req else 500)
        s = m.client_summary("c")
        assert s["slo"]["violations"] == 1
        assert s["slo"]["met"]
