"""Tests for the extension workloads (timewarp, DLSS-style upscaler)."""

import pytest

from repro.compute import (
    build_compute_workload,
    build_timewarp_kernels,
    build_upscaler_kernels,
)
from repro.api import simulate as api_simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import CRISP
from repro.isa import Op, Unit
from repro.timing import simulate


class TestTimewarp:
    def test_one_kernel_per_frame(self):
        assert len(build_timewarp_kernels(frames=1)) == 1
        assert len(build_timewarp_kernels(frames=3)) == 3

    def test_gather_pattern_present(self):
        k = build_timewarp_kernels()[0]
        # The reprojection gather produces scattered (multi-line) loads.
        max_tx = max(i.mem.num_transactions
                     for cta in k.ctas for w in cta.warps for i in w
                     if i.op is Op.LDG)
        assert max_tx > 4

    def test_framebuffer_aliasing(self):
        base = 123 * 128
        k = build_timewarp_kernels(framebuffer_base=base)[0]
        lines = set()
        for cta in k.ctas:
            for w in cta.warps:
                for i in w:
                    if i.op is Op.LDG and i.mem.num_transactions > 1:
                        lines.update(i.mem.lines)
        span = 96 * 64 * 4
        assert all(base <= l < base + span + 128 for l in lines)

    def test_runs_on_timing_model(self):
        stats = simulate(JETSON_ORIN_MINI, {0: build_timewarp_kernels()})
        assert stats.stream(0).kernels_completed == 1

    def test_latency_critical_short(self):
        """ATW must be far shorter than a rendering frame (its whole point)."""
        crisp = CRISP(JETSON_ORIN_MINI)
        frame_cycles = api_simulate(
            config=crisp.config,
            streams={0: crisp.trace_scene("SPL", "2k").kernels},
        ).stats.cycles
        atw_cycles = api_simulate(
            config=crisp.config,
            streams={0: build_timewarp_kernels()}).stats.cycles
        assert atw_cycles < frame_cycles / 3


class TestUpscaler:
    def test_three_kernels_per_frame(self):
        assert len(build_upscaler_kernels(frames=1)) == 3
        assert len(build_upscaler_kernels(frames=2)) == 6

    def test_tensor_dominated(self):
        total = {}
        for k in build_upscaler_kernels():
            for op, n in k.instruction_mix().items():
                total[op] = total.get(op, 0) + n
        assert total[Op.HMMA] > total.get(Op.MUFU_SIN, 0)
        assert total[Op.HMMA] >= total[Op.FFMA] * 0.5

    def test_uses_shared_memory_tiling(self):
        ks = build_upscaler_kernels()
        assert any(k.shared_mem_per_cta >= 8 * 1024 for k in ks)
        assert any(Op.BAR in k.instruction_mix() for k in ks)

    def test_registered_in_workload_registry(self):
        assert build_compute_workload("DLSS")
        assert build_compute_workload("ATW")

    def test_complementary_with_rendering(self):
        """DLSS (tensor) + rendering (FP) share an SM with little unit
        overlap: FG sharing must not collapse either stream."""
        crisp = CRISP(JETSON_ORIN_MINI)
        frame = crisp.trace_scene("SPL", "4k")
        dlss = build_upscaler_kernels(frames=2)
        streams = {0: frame.kernels, 1: dlss}
        pair = api_simulate(config=crisp.config, streams=streams,
                            policy="fg-even").stats
        mps = api_simulate(config=crisp.config, streams=streams,
                           policy="mps").stats
        # Intra-SM sharing with complementary units is at worst mildly
        # slower, typically faster, than dedicating SMs.
        assert pair.cycles < mps.cycles * 1.15
