"""Tests for the seeded arrival processes of the open-loop injector.

Determinism contract: arrival schedules are pure functions of process
parameters and the rng seed — the property the bit-identical QoS report
chain starts from.
"""

import random

import pytest

from repro.qos import (BurstyProcess, PeriodicProcess, PoissonProcess,
                       RampProcess, TraceProcess, client_rng)


def _nondecreasing(xs):
    return all(b >= a for a, b in zip(xs, xs[1:]))


class TestClientRng:
    def test_same_seed_same_stream(self):
        a = client_rng(7, 0).random()
        b = client_rng(7, 0).random()
        assert a == b

    def test_clients_decorrelated(self):
        streams = [tuple(client_rng(7, i).random() for _ in range(4))
                   for i in range(3)]
        assert len(set(streams)) == 3

    def test_seeds_decorrelated(self):
        assert client_rng(7, 0).random() != client_rng(8, 0).random()


class TestPoisson:
    def test_reproducible(self):
        p = PoissonProcess(500)
        assert p.times(50, client_rng(7, 0)) == p.times(50, client_rng(7, 0))

    def test_different_seeds_differ(self):
        p = PoissonProcess(500)
        assert p.times(50, client_rng(7, 0)) != p.times(50, client_rng(8, 0))

    def test_monotone_integer_cycles(self):
        times = PoissonProcess(300).times(200, client_rng(3, 1))
        assert _nondecreasing(times)
        assert all(isinstance(t, int) and t >= 1 for t in times)

    def test_mean_tracks_parameter(self):
        times = PoissonProcess(1_000).times(2_000, random.Random(11))
        mean = times[-1] / len(times)
        assert 850 < mean < 1_150

    def test_rejects_bad_interarrival(self):
        with pytest.raises(ValueError):
            PoissonProcess(0)


class TestTrace:
    def test_replays_prefix(self):
        t = TraceProcess((5, 10, 20, 20, 30))
        assert t.times(3, random.Random(0)) == [5, 10, 20]

    def test_rng_unused(self):
        t = TraceProcess((1, 2, 3))
        assert t.times(3, random.Random(0)) == t.times(3, random.Random(99))

    def test_rejects_overdraw(self):
        with pytest.raises(ValueError):
            TraceProcess((1, 2)).times(3, random.Random(0))

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            TraceProcess((5, 3))

    def test_rejects_negative_and_empty(self):
        with pytest.raises(ValueError):
            TraceProcess((-1, 2))
        with pytest.raises(ValueError):
            TraceProcess(())


class TestPeriodic:
    def test_fixed_clock(self):
        assert PeriodicProcess(100).times(4, random.Random(0)) == \
            [0, 100, 200, 300]

    def test_offset(self):
        assert PeriodicProcess(100, offset=7).times(3, random.Random(0)) == \
            [7, 107, 207]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PeriodicProcess(0)
        with pytest.raises(ValueError):
            PeriodicProcess(10, offset=-1)


class TestBurstyAndRamp:
    def test_bursty_reproducible_and_monotone(self):
        p = BurstyProcess(2_000, 100, phase_len=3, burst_len=5)
        t1 = p.times(64, client_rng(7, 2))
        assert t1 == p.times(64, client_rng(7, 2))
        assert _nondecreasing(t1)

    def test_bursty_bursts_are_denser(self):
        p = BurstyProcess(10_000, 10, phase_len=4, burst_len=4)
        times = p.times(80, random.Random(5))
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Phase structure: gaps alternate between ~10000 and ~10 regimes.
        assert max(gaps) > 50 * min(gaps)

    def test_ramp_accelerates(self):
        p = RampProcess(10_000, 100)
        times = p.times(100, random.Random(9))
        first = times[10] - times[0]
        last = times[-1] - times[-11]
        assert first > 3 * last

    def test_describe_roundtrip_keys(self):
        for proc in (PoissonProcess(10), TraceProcess((1,)),
                     PeriodicProcess(5), BurstyProcess(10, 2),
                     RampProcess(10, 2)):
            d = proc.describe()
            assert d["kind"] == proc.kind
