"""Tests for the analysis metrics and reductions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    binned_histogram,
    concordance,
    correlation_percent,
    geometric_mean,
    graphics_vs_compute,
    histogram,
    mape,
    mean,
    mean_fraction,
    mode,
    peak_fraction,
    pearson,
    summarize,
)
from repro.isa import DataClass


class TestMAPE:
    def test_perfect_prediction(self):
        assert mape([1, 2, 3], [1, 2, 3]) == 0.0

    def test_uniform_overestimate(self):
        assert mape([1, 2], [2, 4]) == pytest.approx(100.0)

    def test_rejects_zero_actual(self):
        with pytest.raises(ValueError):
            mape([0, 1], [1, 1])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            mape([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mape([], [])


class TestCorrelation:
    def test_perfect_linear(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anticorrelated(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_percent(self):
        assert correlation_percent([1, 2, 3], [2, 4, 6]) == pytest.approx(100.0)

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_concordance_penalises_scale(self):
        a = [1.0, 2.0, 3.0, 4.0]
        assert concordance(a, a) == pytest.approx(1.0)
        inflated = [3.0, 6.0, 9.0, 12.0]
        assert concordance(a, inflated) < 0.7
        assert pearson(a, inflated) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1.0, 100.0), min_size=3, max_size=20))
    def test_property_concordance_at_most_pearson(self, xs):
        ys = [x * 1.5 + 2 for x in xs]
        if np.std(xs) < 1e-9:
            return
        assert concordance(xs, ys) <= pearson(xs, ys) + 1e-9


class TestGeomean:
    def test_simple(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestL2Comp:
    SNAPS = [
        (0, {DataClass.TEXTURE: 60, DataClass.PIPELINE: 40}),
        (100, {DataClass.TEXTURE: 20, DataClass.PIPELINE: 40,
               DataClass.COMPUTE: 40}),
    ]

    def test_mean_fraction(self):
        assert mean_fraction(self.SNAPS, DataClass.TEXTURE) == pytest.approx(0.4)

    def test_peak_fraction(self):
        assert peak_fraction(self.SNAPS, DataClass.TEXTURE) == pytest.approx(0.6)

    def test_graphics_vs_compute(self):
        series = graphics_vs_compute(self.SNAPS)
        assert series[0] == (0, 1.0, 0.0)
        cycle, gfx, cmp_ = series[1]
        assert gfx == pytest.approx(0.6)
        assert cmp_ == pytest.approx(0.4)

    def test_summarize_keys(self):
        s = summarize(self.SNAPS)
        assert set(s) == {c.value for c in DataClass}

    def test_empty_snapshot_tolerated(self):
        assert mean_fraction([(0, {})], DataClass.TEXTURE) == 0.0


class TestWorkingSet:
    def test_histogram(self):
        assert histogram([3, 3, 4]) == {3: 2, 4: 1}

    def test_binned(self):
        assert binned_histogram([1, 2, 3, 9], bin_width=4) == [(0, 3), (8, 1)]

    def test_binned_rejects_zero_width(self):
        with pytest.raises(ValueError):
            binned_histogram([1], bin_width=0)

    def test_mode_and_mean(self):
        data = [3, 3, 4, 5]
        assert mode(data) == 3
        assert mean(data) == pytest.approx(3.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mode([])
        with pytest.raises(ValueError):
            mean([])
