"""Tests for the banked L2 and the DRAM channel model."""

import pytest

from repro.config import CacheConfig, RTX_3070_MINI
from repro.isa import DataClass
from repro.memory import DRAM, L2Cache


def make_l2():
    return L2Cache(RTX_3070_MINI)


class TestBankRouting:
    def test_bank_of_is_stable(self):
        l2 = make_l2()
        assert l2.bank_of(0) == l2.bank_of(0)

    def test_lines_spread_across_banks(self):
        l2 = make_l2()
        banks = {l2.bank_of(i * 128) for i in range(64)}
        assert len(banks) == l2.num_banks

    def test_bank_partition_routes_to_assigned(self):
        l2 = make_l2()
        l2.partition_banks({0: [0, 1], 1: [2, 3]})
        for i in range(64):
            assert l2.bank_of(i * 128, stream=0) in (0, 1)
            assert l2.bank_of(i * 128, stream=1) in (2, 3)

    def test_partition_rejects_overlap(self):
        l2 = make_l2()
        with pytest.raises(ValueError):
            l2.partition_banks({0: [0, 1], 1: [1, 2]})

    def test_partition_rejects_empty(self):
        l2 = make_l2()
        with pytest.raises(ValueError):
            l2.partition_banks({0: []})

    def test_partition_rejects_out_of_range(self):
        l2 = make_l2()
        with pytest.raises(ValueError):
            l2.partition_banks({0: [99]})

    def test_partition_clearable(self):
        l2 = make_l2()
        l2.partition_banks({0: [0], 1: [1]})
        l2.partition_banks(None)
        banks = {l2.bank_of(i * 128, stream=0) for i in range(64)}
        assert len(banks) == l2.num_banks


class TestL2Access:
    def test_miss_then_hit_latency_ordering(self):
        l2 = make_l2()
        t_miss = l2.access(0, 0, DataClass.COMPUTE, 0)
        t_hit = l2.access(0, t_miss, DataClass.COMPUTE, 0)
        assert t_miss > RTX_3070_MINI.l2.hit_latency  # went to DRAM
        assert t_hit - t_miss == RTX_3070_MINI.l2.hit_latency

    def test_mshr_merge_returns_pending_time(self):
        l2 = make_l2()
        t0 = l2.access(0, 0, DataClass.COMPUTE, 0)
        # Second access before the fill returns merges into it.
        t1 = l2.access(0, 1, DataClass.COMPUTE, 0)
        assert t1 >= t0 - RTX_3070_MINI.l2.hit_latency
        st = l2.stats_for(0)
        assert st.mshr_merges >= 1

    def test_observer_called(self):
        l2 = make_l2()
        seen = []
        l2.access_observer = lambda a, s: seen.append((a, s))
        l2.access(128, 0, DataClass.COMPUTE, 3)
        assert seen == [(128, 3)]

    def test_composition_tracks_classes(self):
        l2 = make_l2()
        l2.access(0, 0, DataClass.TEXTURE, 0)
        l2.access(4096, 0, DataClass.COMPUTE, 1)
        comp = l2.composition()
        assert comp[DataClass.TEXTURE] == 1
        assert comp[DataClass.COMPUTE] == 1

    def test_set_partition_applies_to_banks(self):
        l2 = make_l2()
        l2.partition_sets({0: 4, 1: l2.sets_per_bank - 4})
        for bank in l2.banks:
            assert bank.set_partition is not None

    def test_stats_per_stream(self):
        l2 = make_l2()
        l2.access(0, 0, DataClass.COMPUTE, 0)
        l2.access(0, 1000, DataClass.COMPUTE, 0)
        st = l2.stats_for(0)
        assert st.accesses == 2
        assert st.hits >= 1

    def test_flush(self):
        l2 = make_l2()
        l2.access(0, 0, DataClass.COMPUTE, 0)
        l2.flush()
        assert sum(l2.composition().values()) == 0


class TestDRAM:
    def test_fixed_latency_applied(self):
        d = DRAM(RTX_3070_MINI)
        t = d.access(0, 0)
        assert t >= RTX_3070_MINI.dram_latency

    def test_channel_bandwidth_serialises(self):
        d = DRAM(RTX_3070_MINI)
        line = 0
        t1 = d.access(line, 0)
        t2 = d.access(line, 0)  # same channel, immediately after
        assert t2 > t1

    def test_different_channels_parallel(self):
        d = DRAM(RTX_3070_MINI)
        t1 = d.access(0, 0)
        t2 = d.access(128, 0)  # next line -> different channel
        assert t2 == t1

    def test_bytes_accounted(self):
        d = DRAM(RTX_3070_MINI)
        d.access(0, 0, stream=0)
        d.access(128, 0, stream=0, is_store=True)
        st = d.stats[0]
        assert st.reads == 1
        assert st.writes == 1
        assert d.aggregate_bytes() == 2 * 128

    def test_channel_of_range(self):
        d = DRAM(RTX_3070_MINI)
        for i in range(32):
            assert 0 <= d.channel_of(i * 128) < d.num_channels
