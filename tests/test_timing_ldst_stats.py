"""Tests for the LDST path (L1 behaviour) and per-stream statistics."""

import pytest

from repro.config import RTX_3070_MINI
from repro.isa import DataClass, MemAccess, Op, Unit, WarpInstruction
from repro.memory import L2Cache
from repro.timing import GPUStats, LDSTPath
from repro.timing.stats import OccupancySample, StreamStats


@pytest.fixture()
def path():
    stats = GPUStats()
    l2 = L2Cache(RTX_3070_MINI)
    return LDSTPath(0, RTX_3070_MINI, l2, stats), stats


def load_inst(lines, data_class=DataClass.COMPUTE, bypass=False):
    return WarpInstruction(Op.LDG, dst=4, mem=MemAccess(
        lines, data_class, bypass_l1=bypass))


class TestLDSTPath:
    def test_cold_load_pays_full_path(self, path):
        p, _ = path
        done = p.issue(load_inst([0]), 0, stream=0)
        cfg = RTX_3070_MINI
        assert done >= cfg.icnt_latency * 2 + cfg.l2.hit_latency

    def test_warm_load_is_l1_hit(self, path):
        p, _ = path
        t1 = p.issue(load_inst([0]), 0, stream=0)
        t2 = p.issue(load_inst([0]), t1, stream=0)
        assert t2 - t1 == RTX_3070_MINI.l1.hit_latency

    def test_transactions_serialise_on_port(self, path):
        p, _ = path
        p.issue(load_inst([0, 128, 256, 384]), 0, stream=0)
        one = p.issue(load_inst([0]), 1000, stream=0)
        four = p.issue(load_inst([0, 128, 256, 384]), 1000, stream=0)
        assert four > one

    def test_store_is_write_through(self, path):
        p, stats = path
        store = WarpInstruction(Op.STG, srcs=(4,),
                                mem=MemAccess([0], DataClass.COMPUTE))
        p.issue(store, 0, stream=0)
        # Store did not allocate in L1: a subsequent load misses.
        t1 = p.issue(load_inst([0]), 500, stream=0)
        assert t1 - 500 > RTX_3070_MINI.l1.hit_latency

    def test_store_reaches_l2(self, path):
        p, _ = path
        store = WarpInstruction(Op.STG, srcs=(4,),
                                mem=MemAccess([0], DataClass.COMPUTE))
        p.issue(store, 0, stream=0)
        assert p.l2.stats_for(0).accesses == 1

    def test_shared_memory_fixed_latency(self, path):
        p, stats = path
        lds = WarpInstruction(Op.LDS, dst=4, srcs=(1,))
        done = p.issue(lds, 10, stream=0)
        assert done == 10 + p.shared_latency
        assert stats.stream(0).shared_accesses == 1

    def test_const_cheap(self, path):
        p, _ = path
        ldc = WarpInstruction(Op.LDC, dst=4, srcs=(1,))
        assert p.issue(ldc, 0, stream=0) <= 10

    def test_bypass_skips_l1(self, path):
        p, stats = path
        p.issue(load_inst([0], bypass=True), 0, stream=0)
        assert stats.stream(0).l1_accesses == 0
        # The line is in L2 now but NOT in L1.
        assert not p.l1.probe(0)

    def test_texture_class_counted_separately(self, path):
        p, stats = path
        tex = WarpInstruction(Op.TEX, dst=4,
                              mem=MemAccess([0, 128], DataClass.TEXTURE))
        p.issue(tex, 0, stream=0)
        s = stats.stream(0)
        assert s.l1_tex_accesses == 2
        assert s.l1_accesses == 2

    def test_per_stream_isolation(self, path):
        p, stats = path
        p.issue(load_inst([0]), 0, stream=0)
        p.issue(load_inst([1 << 20]), 0, stream=1)
        assert stats.stream(0).l1_accesses == 1
        assert stats.stream(1).l1_accesses == 1


class TestStreamStats:
    def test_ipc(self):
        s = StreamStats(0)
        s.note_issue(Unit.FP, 10)
        s.note_issue(Unit.FP, 11)
        s.note_commit(20)
        assert s.busy_cycles == 10
        assert s.ipc == pytest.approx(0.2)

    def test_zero_safe(self):
        s = StreamStats(0)
        assert s.ipc == 0.0
        assert s.l1_hit_rate == 0.0
        assert s.busy_cycles == 0

    def test_first_issue_tracks_minimum(self):
        s = StreamStats(0)
        s.note_issue(Unit.FP, 50)
        s.note_issue(Unit.INT, 30)
        assert s.first_issue_cycle == 30

    def test_issue_by_unit(self):
        s = StreamStats(0)
        s.note_issue(Unit.SFU, 0)
        s.note_issue(Unit.SFU, 1)
        s.note_issue(Unit.MEM, 2)
        assert s.issue_by_unit[Unit.SFU] == 2
        assert s.issue_by_unit[Unit.MEM] == 1

    def test_l1_counters(self):
        s = StreamStats(0)
        s.note_l1(True, DataClass.TEXTURE, transactions=3)
        s.note_l1(False, DataClass.COMPUTE, transactions=1)
        assert s.l1_accesses == 4
        assert s.l1_hits == 3
        assert s.l1_tex_accesses == 3
        assert s.l1_tex_hits == 3


class TestGPUStats:
    def test_stream_lazily_created(self):
        g = GPUStats()
        assert g.stream(3).stream == 3
        assert 3 in g.streams

    def test_total_instructions(self):
        g = GPUStats()
        g.stream(0).note_issue(Unit.FP, 0)
        g.stream(1).note_issue(Unit.FP, 0)
        assert g.total_instructions == 2

    def test_summary_shape(self):
        g = GPUStats()
        g.stream(0).note_issue(Unit.FP, 0)
        summary = g.summary()
        assert set(summary[0]) == {"instructions", "busy_cycles", "ipc",
                                   "l1_hit_rate", "l1_tex_accesses", "ctas"}

    def test_occupancy_sample_fraction(self):
        s = OccupancySample(100, {0: 32, 1: 16}, total_warp_slots=64)
        assert s.fraction(0) == 0.5
        assert s.fraction(1) == 0.25
        assert s.fraction(9) == 0.0


class TestWorkloadPair:
    def test_streams_mapping(self):
        from repro.core import GRAPHICS_STREAM, COMPUTE_STREAM, WorkloadPair
        from repro.compute import build_vio_kernels
        ks = build_vio_kernels()
        pair = WorkloadPair("t", ks[:2], ks[2:4])
        streams = pair.streams()
        assert set(streams) == {GRAPHICS_STREAM, COMPUTE_STREAM}
        assert pair.total_instructions > 0

    def test_rejects_empty_side(self):
        from repro.core import WorkloadPair
        from repro.compute import build_vio_kernels
        ks = build_vio_kernels()
        with pytest.raises(ValueError):
            WorkloadPair("t", [], ks)
        with pytest.raises(ValueError):
            WorkloadPair("t", ks, [])
