"""Property-based stress tests of the timing model.

Random kernels must always terminate, conserve instruction counts, and
respect basic physical invariants regardless of shape — the kind of
whole-model guarantees unit tests can't give.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compute import DeviceMemory, KernelBuilder
from repro.config import CacheConfig, RTX_3070_MINI
from repro.isa import Unit, load_traces, save_traces, traces_equal
from repro.timing import GPU, simulate

SMALL = RTX_3070_MINI.replace(
    name="prop", num_sms=2,
    l2=CacheConfig(size_bytes=128 * 1024, assoc=16, hit_latency=120),
    l2_banks=2)


@st.composite
def random_kernel(draw, name="rk"):
    mem = DeviceMemory(region=9)
    grid = draw(st.integers(1, 4))
    warps = draw(st.integers(1, 4))
    b = KernelBuilder(name, grid, warps * 32,
                      regs_per_thread=draw(st.integers(16, 64)),
                      shared_mem=draw(st.sampled_from([0, 4096, 16384])))
    buf = mem.buffer("buf", 1 << 16)
    n_ops = draw(st.integers(1, 8))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["load", "store", "fp", "int", "sfu", "tensor", "shared",
             "barrier", "divergent"]))
        if kind == "load":
            b.load(buf, draw(st.sampled_from(
                ["coalesced", "strided", "broadcast", "random"])),
                words=draw(st.integers(1, 3)),
                streaming=draw(st.booleans()))
        elif kind == "store":
            b.store(buf)
        elif kind == "fp":
            b.fp(draw(st.integers(1, 20)))
        elif kind == "int":
            b.intop(draw(st.integers(1, 10)))
        elif kind == "sfu":
            b.sfu(draw(st.integers(1, 6)))
        elif kind == "tensor":
            b.tensor(draw(st.integers(1, 6)))
        elif kind == "shared":
            b.shared_store(1).shared_load(1)
        elif kind == "barrier":
            b.barrier()
        else:
            frac = draw(st.floats(0.1, 0.9))
            b.divergent(frac, lambda s: s.fp(3))
    return b.build()


@settings(max_examples=25, deadline=None)
@given(random_kernel())
def test_property_random_kernel_terminates_and_conserves(kernel):
    stats = simulate(SMALL, {0: [kernel]})
    s = stats.stream(0)
    assert s.instructions == kernel.num_instructions
    assert s.ctas_completed == kernel.num_ctas
    assert s.kernels_completed == 1
    assert stats.cycles >= 1


@settings(max_examples=15, deadline=None)
@given(random_kernel(name="a"), random_kernel(name="b"))
def test_property_two_streams_complete_under_sharing(ka, kb):
    stats = simulate(SMALL, {0: [ka], 1: [kb]})
    assert stats.stream(0).instructions == ka.num_instructions
    assert stats.stream(1).instructions == kb.num_instructions


@settings(max_examples=15, deadline=None)
@given(random_kernel())
def test_property_simulation_deterministic(kernel):
    a = simulate(SMALL, {0: [kernel]}).cycles
    b = simulate(SMALL, {0: [kernel]}).cycles
    assert a == b


@settings(max_examples=15, deadline=None)
@given(random_kernel())
def test_property_issue_counts_by_unit_sum(kernel):
    stats = simulate(SMALL, {0: [kernel]})
    s = stats.stream(0)
    assert sum(s.issue_by_unit.values()) == s.instructions


@settings(max_examples=10, deadline=None)
@given(kernel=random_kernel())
def test_property_serialization_roundtrip(tmp_path_factory, kernel):
    path = str(tmp_path_factory.mktemp("traces") / "k.gz")
    save_traces(path, [kernel])
    loaded = load_traces(path)
    assert traces_equal([kernel], loaded)
    assert simulate(SMALL, {0: [kernel]}).cycles == \
        simulate(SMALL, {0: loaded}).cycles


@settings(max_examples=10, deadline=None)
@given(random_kernel(), st.sampled_from(["mps", "mig", "fg-even", "tap"]))
def test_property_policies_never_lose_work(kernel, policy_name):
    from repro.core import make_policy
    pol = make_policy(policy_name, SMALL, [0, 1])
    gpu = GPU(SMALL, policy=pol)
    gpu.add_stream(0, [kernel])
    gpu.add_stream(1, [kernel])
    stats = gpu.run()
    assert stats.stream(0).kernels_completed == 1
    assert stats.stream(1).kernels_completed == 1
