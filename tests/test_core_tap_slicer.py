"""Tests for TAP (utility monitors, lookahead) and Warped-Slicer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RTX_3070_MINI
from repro.core import TAPPolicy, UtilityMonitor, lookahead_partition, water_filling
from repro.core.warped_slicer import WarpedSlicerPolicy
from repro.memory import L2Cache


def monitor(assoc=8, sets=64, sample_every=1):
    return UtilityMonitor(assoc=assoc, num_sets=sets, line_size=128,
                          sample_every=sample_every)


class TestUtilityMonitor:
    def test_repeated_line_hits_at_distance_zero(self):
        m = monitor()
        for _ in range(5):
            m.observe(0)
        assert m.hit_histogram[0] == 4
        assert m.misses == 1

    def test_stack_distance_two(self):
        m = monitor()
        sets = 64
        # Lines in the same set: a, b, a -> a re-hit at stack distance 1.
        a, b = 0, sets * 128
        m.observe(a)
        m.observe(b)
        m.observe(a)
        assert m.hit_histogram[1] == 1

    def test_utility_monotone_in_ways(self):
        m = monitor(assoc=4)
        lines = [i * 64 * 128 for i in range(4)]
        for _ in range(3):
            for l in lines:
                m.observe(l)
        last = -1
        for w in range(5):
            u = m.utility(w)
            assert u >= last
            last = u

    def test_streaming_pattern_zero_utility(self):
        m = monitor(assoc=4)
        for i in range(100):
            m.observe(i * 64 * 128)  # never re-referenced
        assert m.utility(4) == 0

    def test_sampling_skips_sets(self):
        m = monitor(sample_every=64)
        m.observe(128)  # set 1: not sampled
        assert m.accesses == 0
        m.observe(0)    # set 0: sampled
        assert m.accesses == 1

    def test_reset(self):
        m = monitor()
        m.observe(0)
        m.observe(0)
        m.reset()
        assert m.accesses == 0
        assert sum(m.hit_histogram) == 0

    def test_marginal_utility(self):
        m = monitor(assoc=4)
        a, b = 0, 64 * 128
        for _ in range(4):
            m.observe(a)
            m.observe(b)
        # Alternating accesses re-hit at stack distance 1: the second way
        # is the one that adds utility.
        assert m.marginal_utility(0, 1) == 0.0
        assert m.marginal_utility(1, 2) > 0
        assert m.marginal_utility(2, 2) == 0.0


class TestLookahead:
    def test_cache_friendly_stream_wins(self):
        friendly = monitor(assoc=8)
        streamer = monitor(assoc=8)
        lines = [i * 64 * 128 for i in range(4)]
        for _ in range(10):
            for l in lines:
                friendly.observe(l)
        for i in range(40):
            streamer.observe((100 + i) * 64 * 128)
        ways = lookahead_partition({0: friendly, 1: streamer}, assoc=8)
        assert ways[0] > ways[1]
        assert ways[0] + ways[1] == 8

    def test_every_stream_gets_at_least_one(self):
        a, b = monitor(), monitor()
        a.observe(0)
        ways = lookahead_partition({0: a, 1: b}, assoc=8)
        assert ways[1] >= 1

    def test_rejects_too_few_ways(self):
        with pytest.raises(ValueError):
            lookahead_partition({0: monitor(), 1: monitor()}, assoc=1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            lookahead_partition({}, assoc=8)

    def test_rate_normalisation_prevents_rate_domination(self):
        # Heavy stream: many accesses, mild reuse. Light stream: few
        # accesses, perfect reuse. Raw hits would favour heavy; TAP's
        # normalisation must keep light competitive.
        heavy, light = monitor(assoc=4), monitor(assoc=4)
        for i in range(50):
            heavy.observe(0)
            heavy.observe(64 * 128 * (i % 8))
        for _ in range(6):
            light.observe(0)
        ways = lookahead_partition({0: heavy, 1: light}, assoc=4)
        assert ways[1] >= 1


class TestTAPPolicy:
    def test_configure_installs_even_split_and_observer(self):
        p = TAPPolicy.even(4, [0, 1])
        l2 = L2Cache(RTX_3070_MINI)
        p.configure_memory(l2, [0, 1])
        assert l2.access_observer is not None
        assert l2.banks[0].set_partition is not None

    def test_epoch_repartitions(self):
        from repro.isa import DataClass
        p = TAPPolicy.even(4, [0, 1], epoch_interval=100)
        l2 = L2Cache(RTX_3070_MINI)
        p.configure_memory(l2, [0, 1])
        # Stream 0 re-uses lines; stream 1 streams.
        for rep in range(6):
            for i in range(8):
                l2.access(i * 128, rep * 100, DataClass.TEXTURE, 0)
        for i in range(200):
            l2.access((1 << 30) + i * 128, i, DataClass.COMPUTE, 1)
        p.on_epoch(None, 1000)
        ratio = p.current_ratio()
        assert ratio is not None
        assert ratio[0] + ratio[1] <= l2.sets_per_bank
        assert ratio[0] >= 1 and ratio[1] >= 1

    def test_no_epoch_without_traffic(self):
        p = TAPPolicy.even(4, [0, 1])
        l2 = L2Cache(RTX_3070_MINI)
        p.configure_memory(l2, [0, 1])
        p.on_epoch(None, 100)
        assert p.current_ratio() is None


class TestWaterFilling:
    def test_picks_max_combined(self):
        curve_a = {0.25: 1.0, 0.5: 2.0, 0.75: 2.2}
        curve_b = {0.25: 3.0, 0.5: 2.6, 0.75: 0.5}
        # normalized: a: .45,.91,1.0 ; b: 1.0,.87,.17 -> best 0.5
        assert water_filling(curve_a, curve_b) == 0.5

    def test_mismatched_ladders_rejected(self):
        with pytest.raises(ValueError):
            water_filling({0.5: 1.0}, {0.25: 1.0})

    def test_zero_curves_safe(self):
        f = water_filling({0.25: 0.0, 0.5: 0.0}, {0.25: 0.0, 0.5: 0.0})
        assert f in (0.25, 0.5)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 10.0), min_size=3, max_size=3),
           st.lists(st.floats(0.0, 10.0), min_size=3, max_size=3))
    def test_property_result_on_ladder(self, va, vb):
        ladder = (0.25, 0.5, 0.75)
        a = dict(zip(ladder, va))
        b = dict(zip(ladder, vb))
        assert water_filling(a, b) in ladder


class TestWarpedSlicerPolicy:
    def test_requires_two_streams(self):
        with pytest.raises(ValueError):
            WarpedSlicerPolicy([0])
        with pytest.raises(ValueError):
            WarpedSlicerPolicy([0, 1, 2])

    def test_initial_even(self):
        p = WarpedSlicerPolicy([0, 1])
        assert p.fractions == {0: 0.5, 1: 0.5}

    def test_end_to_end_produces_decisions(self):
        from repro.compute import build_vio_kernels
        from repro.timing import GPU
        p = WarpedSlicerPolicy([0, 1], sample_cycles=300, epoch_interval=100)
        gpu = GPU(RTX_3070_MINI, policy=p)
        gpu.add_stream(0, build_vio_kernels())
        gpu.add_stream(1, build_vio_kernels())
        gpu.run()
        assert p.samples_taken > 0
        assert p.decisions
        for _, frac in p.decisions:
            assert frac in p.ladder
