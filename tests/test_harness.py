"""Tests for the hardware-reference model and capability table."""

import numpy as np
import pytest

from repro.config import RTX_3070_MINI
from repro.harness import (
    TABLE1,
    deterministic_factor,
    format_table,
    reference_frame_cycles,
    reference_tex_transactions,
    reference_vs_invocations,
    roofline_cycles,
    verify_crisp_row,
)
from repro.isa import CTATrace, DataClass, KernelTrace, MemAccess, Op, WarpInstruction, WarpTrace


def tiny_kernel(n_fp=10, n_lines=4):
    wt = WarpTrace([WarpInstruction(Op.FFMA, dst=4, srcs=(1,))
                    for _ in range(n_fp)])
    wt.append(WarpInstruction(
        Op.LDG, dst=5, mem=MemAccess([i * 128 for i in range(n_lines)],
                                     DataClass.COMPUTE)))
    wt.append(WarpInstruction(Op.EXIT))
    return KernelTrace("t", [CTATrace([wt])], threads_per_cta=32)


class TestDeterministicFactor:
    def test_stable(self):
        assert deterministic_factor("x", 0, 1) == deterministic_factor("x", 0, 1)

    def test_in_range(self):
        for key in ("a", "b", "c", "frame:SPH@2k"):
            f = deterministic_factor(key, 0.5, 0.9)
            assert 0.5 <= f <= 0.9

    def test_key_sensitivity(self):
        assert deterministic_factor("a", 0, 1) != deterministic_factor("b", 0, 1)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            deterministic_factor("a", 1.0, 0.5)


class TestRoofline:
    def test_positive(self):
        assert roofline_cycles([tiny_kernel()], RTX_3070_MINI) > 0

    def test_scales_with_work(self):
        small = roofline_cycles([tiny_kernel(n_fp=10)], RTX_3070_MINI)
        big = roofline_cycles([tiny_kernel(n_fp=10000)], RTX_3070_MINI)
        assert big > small * 100

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            roofline_cycles([], RTX_3070_MINI)

    def test_fewer_sms_slower(self):
        k = [tiny_kernel(n_fp=10000)]
        fat = roofline_cycles(k, RTX_3070_MINI)
        thin = roofline_cycles(k, RTX_3070_MINI.replace(num_sms=2))
        assert thin > fat


class TestReferences:
    def test_frame_reference_deterministic(self):
        k = [tiny_kernel()]
        a = reference_frame_cycles(k, RTX_3070_MINI, "app@2k")
        b = reference_frame_cycles(k, RTX_3070_MINI, "app@2k")
        assert a == b

    def test_frame_reference_above_roofline_floor(self):
        k = [tiny_kernel()]
        assert reference_frame_cycles(k, RTX_3070_MINI, "a") > 0

    def test_vs_invocations_match_batch96_threads(self):
        # A strip of 100 triangles: hardware counts threads (no warp pad).
        idx = np.array([[i, i + 1, i + 2] for i in range(100)])
        ref = reference_vs_invocations(idx)
        from repro.graphics import build_batches, unique_vertex_count
        assert ref == unique_vertex_count(build_batches(idx, 96))

    def test_tex_reference_near_mipmapped(self):
        ref = reference_tex_transactions("d", 1000)
        assert 500 < ref < 1500

    def test_tex_reference_rejects_negative(self):
        with pytest.raises(ValueError):
            reference_tex_transactions("d", -1)

    def test_tex_reference_floor_one(self):
        assert reference_tex_transactions("d", 0) == 1.0


class TestCapabilities:
    def test_crisp_row_checks_pass(self):
        assert all(verify_crisp_row().values())

    def test_table_has_crisp_last(self):
        assert TABLE1[-1].name == "CRISP"
        assert TABLE1[-1].workloads == "Rendering + CUDA"

    def test_only_crisp_has_both(self):
        both = [r for r in TABLE1
                if r.gpgpu_model == "Yes" and r.rendering_pipeline == "Yes"]
        assert [r.name for r in both] == ["CRISP"]

    def test_format_table_renders(self):
        text = format_table()
        assert "CRISP" in text
        assert "Accel-Sim" in text
        assert len(text.splitlines()) == len(TABLE1) + 2
