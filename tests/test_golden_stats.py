"""Golden-stats regression gate for the timing core.

The hot-path overhaul (global event heap, precomputed issue tuples,
resolved set-mapping tables) is a pure refactor: simulated behaviour must
be *bit-identical* to the pre-optimisation simulator.  These tests pin
that contract by replaying the reference workload (sponza + hologram at
nano on JetsonOrin-mini) under every partition policy and comparing the
full ``GPUStats.to_dict()`` tree against snapshots in ``tests/golden/``,
which were generated with the pre-overhaul code.

If a deliberate model change alters the numbers, regenerate the snapshots
(json.dump(stats.to_dict(), f, indent=1, sort_keys=True)) and say so in
the commit message — never update them to paper over an accidental diff.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import simulate
from repro.config import get_preset
from repro.core.platform import collect_streams

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")
POLICIES = ("shared", "mps", "mig", "fg-even", "warped-slicer", "tap")


@pytest.fixture(scope="module")
def reference_workload():
    """(config, streams) for the golden workload, built once per module."""
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


def _canonical(stats) -> dict:
    # Round-trip through JSON so int dict keys and tuples collapse to the
    # same shapes the golden files hold.
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


@pytest.mark.parametrize("policy", POLICIES)
def test_golden_stats(reference_workload, policy):
    config, streams = reference_workload
    path = os.path.join(GOLDEN_DIR, "sponza_hologram_nano_%s.json" % policy)
    with open(path, "r", encoding="utf-8") as f:
        golden = json.load(f)
    stats = simulate(config=config, streams=streams, policy=policy).stats
    got = _canonical(stats)
    assert got == golden, (
        "GPUStats diverged from golden snapshot under policy=%s" % policy)


def test_simrate_smoke(reference_workload):
    """Tier-1 canary: the reference run must stay fast.

    The bound is deliberately loose (the golden runs take ~0.3s each on
    the structure-of-arrays core) — it exists to catch order-of-magnitude
    regressions like an accidental return to per-cycle full scans, not to
    benchmark.  Real rates live in benchmarks/test_timing_simrate.py.
    Re-tightened after the SoA refactor so future PRs cannot silently give
    the win back and still pass tier-1.
    """
    config, streams = reference_workload
    t0 = time.perf_counter()
    stats = simulate(config=config, streams=streams, policy="mps").stats
    wall = time.perf_counter() - t0
    assert stats.total_instructions > 0
    assert wall < 30.0, (
        "reference run took %.1fs; timing-core fast path has regressed"
        % wall)
