"""Tests for GPU configuration objects and presets (Table II)."""

import pytest

from repro.config import (
    CacheConfig,
    GPUConfig,
    JETSON_ORIN,
    JETSON_ORIN_MINI,
    PRESETS,
    RTX_3070,
    RTX_3070_MINI,
    RTX_3070_NANO,
    get_preset,
)


class TestCacheConfig:
    def test_num_sets(self):
        c = CacheConfig(size_bytes=128 * 1024, assoc=8, line_size=128)
        assert c.num_sets == 128

    def test_num_lines(self):
        c = CacheConfig(size_bytes=128 * 1024, assoc=8, line_size=128)
        assert c.num_lines == 1024

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, assoc=4)

    def test_rejects_nonpositive_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=0)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=3, line_size=128)

    def test_default_line_size_is_128(self):
        # Fig 10 counts 128B lines; the default must match the paper.
        assert CacheConfig(size_bytes=4096, assoc=4).line_size == 128


class TestGPUConfig:
    def test_rtx3070_table2_values(self):
        assert RTX_3070.num_sms == 46
        assert RTX_3070.registers_per_sm == 65536
        assert RTX_3070.max_warps_per_sm == 64
        assert RTX_3070.schedulers_per_sm == 4
        assert RTX_3070.l2.size_bytes == 4 * 1024 * 1024
        assert RTX_3070.dram_bandwidth_gbps == 448.0
        assert RTX_3070.core_clock_mhz == 1132.0

    def test_jetson_orin_table2_values(self):
        assert JETSON_ORIN.num_sms == 14
        assert JETSON_ORIN.dram_bandwidth_gbps == 200.0
        assert JETSON_ORIN.core_clock_mhz == 1300.0

    def test_exec_units_four_of_each(self):
        for cfg in (RTX_3070, JETSON_ORIN):
            assert cfg.fp_units == 4
            assert cfg.int_units == 4
            assert cfg.sfu_units == 4
            assert cfg.tensor_units == 4

    def test_warps_per_scheduler(self):
        assert RTX_3070.warps_per_scheduler == 16

    def test_replace_returns_new_object(self):
        derived = RTX_3070.replace(num_sms=10)
        assert derived.num_sms == 10
        assert RTX_3070.num_sms == 46

    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GPUConfig(name="bad", num_sms=0)

    def test_rejects_warps_not_divisible_by_schedulers(self):
        with pytest.raises(ValueError):
            RTX_3070.replace(max_warps_per_sm=63)

    def test_rejects_l2_sets_not_divisible_by_banks(self):
        with pytest.raises(ValueError):
            RTX_3070.replace(l2_banks=7)

    def test_dram_bytes_per_cycle(self):
        bpc = RTX_3070.dram_bytes_per_cycle
        assert bpc == pytest.approx(448e9 / (1132e6))

    def test_summary_rows_mention_key_fields(self):
        rows = dict(RTX_3070.summary_rows())
        assert rows["# SMs"] == 46
        assert "4MB" in rows["L2 Cache"]


class TestPresets:
    def test_all_presets_retrievable(self):
        for name in PRESETS:
            assert get_preset(name).name == name

    def test_unknown_preset_raises_with_known_names(self):
        with pytest.raises(KeyError, match="RTX3070"):
            get_preset("nonexistent")

    def test_mini_presets_keep_per_sm_shape(self):
        assert RTX_3070_MINI.schedulers_per_sm == RTX_3070.schedulers_per_sm
        assert JETSON_ORIN_MINI.max_warps_per_sm == JETSON_ORIN.max_warps_per_sm

    def test_nano_preset_has_two_sms(self):
        assert RTX_3070_NANO.num_sms == 2

    def test_presets_are_distinct_objects(self):
        assert RTX_3070_MINI is not RTX_3070
        assert RTX_3070_MINI.num_sms < RTX_3070.num_sms
