"""Tests for culling, rasterization, early-Z, and fragment ordering."""

import numpy as np
import pytest

from repro.graphics.lod import lod_from_gradients, select_mip
from repro.graphics.raster import (
    FragmentBuffer,
    backface_cull,
    frustum_cull,
    rasterize_batch,
    resolve_fragment_order,
    warp_slices,
)


def raster_one(screen, depth=None, attrs=None, inv_w=None, early_z=True,
               size=64):
    if depth is None:
        depth = np.full((size, size), np.inf)
    if attrs is None:
        attrs = {"uv": np.array([[0, 0], [1, 0], [0, 1]], dtype=float)}
    if inv_w is None:
        inv_w = np.ones(len(screen))
    return rasterize_batch(np.asarray(screen, dtype=float), inv_w,
                           np.array([[0, 1, 2]]), attrs, depth, early_z)


class TestCulling:
    def test_backface_removed(self):
        screen = np.array([[0, 0, 0], [10, 0, 0], [0, 10, 0]], dtype=float)
        ccw = np.array([[0, 1, 2]])
        cw = np.array([[0, 2, 1]])
        assert len(backface_cull(screen, ccw)) == 1
        assert len(backface_cull(screen, cw)) == 0

    def test_degenerate_removed(self):
        screen = np.array([[0, 0, 0], [5, 5, 0], [10, 10, 0]], dtype=float)
        assert len(backface_cull(screen, np.array([[0, 1, 2]]))) == 0

    def test_frustum_keeps_inside(self):
        clip = np.array([[0, 0, 0.5, 1.0], [0.5, 0, 0.5, 1.0], [0, 0.5, 0.5, 1.0]])
        assert len(frustum_cull(clip, np.array([[0, 1, 2]]))) == 1

    def test_frustum_drops_fully_outside(self):
        clip = np.array([[5, 0, 0.5, 1.0], [6, 0, 0.5, 1.0], [5, 1, 0.5, 1.0]])
        assert len(frustum_cull(clip, np.array([[0, 1, 2]]))) == 0

    def test_frustum_drops_near_plane_crossers(self):
        clip = np.array([[0, 0, 0.5, 1.0], [1, 0, 0.5, -0.5], [0, 1, 0.5, 1.0]])
        assert len(frustum_cull(clip, np.array([[0, 1, 2]]))) == 0

    def test_frustum_empty_input(self):
        clip = np.zeros((3, 4))
        out = frustum_cull(clip, np.empty((0, 3), dtype=np.int64))
        assert len(out) == 0


class TestRasterization:
    def test_half_square_coverage(self):
        fb = raster_one([[0, 0, 0.5], [20, 0, 0.5], [0, 20, 0.5]])
        # Half of a 20x20 square ~ 200 pixels.
        assert 170 <= fb.count <= 230

    def test_fragments_inside_bbox(self):
        fb = raster_one([[3, 2, 0.5], [17, 2, 0.5], [3, 19, 0.5]])
        assert fb.x.min() >= 3 and fb.x.max() <= 17
        assert fb.y.min() >= 2 and fb.y.max() <= 19

    def test_offscreen_clamped(self):
        fb = raster_one([[-10, -10, 0.5], [30, -10, 0.5], [-10, 30, 0.5]],
                        size=16)
        assert fb.count
        assert fb.x.min() >= 0 and fb.y.min() >= 0
        assert fb.x.max() <= 15 and fb.y.max() <= 15

    def test_uv_interpolation_affine_case(self):
        fb = raster_one([[0, 0, 0.5], [32, 0, 0.5], [0, 32, 0.5]])
        i = np.argmin(np.abs(fb.x - 1) + np.abs(fb.y - 1))
        # Near the first vertex, uv ~ (0, 0).
        assert fb.attrs["uv"][i][0] < 0.1
        assert fb.attrs["uv"][i][1] < 0.1

    def test_uv_gradients_match_analytic(self):
        fb = raster_one([[0, 0, 0.5], [40, 0, 0.5], [0, 40, 0.5]])
        # u goes 0->1 over 40 px in x: dudx = 1/40.
        assert np.allclose(fb.dudx, 1 / 40, atol=1e-9)
        assert np.allclose(fb.dvdy, 1 / 40, atol=1e-9)

    def test_perspective_correct_interpolation(self):
        # Vertex 1 is twice as far (w=2): midpoint uv is biased toward the
        # near vertex.
        screen = np.array([[0, 0, 0.5], [40, 0, 0.5], [0, 40, 0.5]], dtype=float)
        inv_w = np.array([1.0, 0.5, 1.0])
        depth = np.full((64, 64), np.inf)
        attrs = {"uv": np.array([[0, 0], [1, 0], [0, 1]], dtype=float)}
        fb = rasterize_batch(screen, inv_w, np.array([[0, 1, 2]]), attrs, depth)
        i = np.argmin(np.abs(fb.x - 20) + np.abs(fb.y - 0))
        u = fb.attrs["uv"][i][0]
        assert u < 0.5  # perspective pulls the midpoint toward w=1 vertex

    def test_empty_result_for_culled(self):
        fb = raster_one([[0, 0, 0.5], [0, 10, 0.5], [10, 0, 0.5]])  # CW
        assert fb.count == 0


class TestEarlyZ:
    def test_nearer_triangle_blocks_later(self):
        depth = np.full((32, 32), np.inf)
        front = raster_one([[0, 0, 0.2], [30, 0, 0.2], [0, 30, 0.2]],
                           depth=depth, size=32)
        behind = raster_one([[0, 0, 0.8], [30, 0, 0.8], [0, 30, 0.8]],
                            depth=depth, size=32)
        assert front.count > 0
        assert behind.count == 0  # fully occluded -> early-Z kills all

    def test_depth_buffer_updated(self):
        depth = np.full((32, 32), np.inf)
        raster_one([[0, 0, 0.3], [30, 0, 0.3], [0, 30, 0.3]], depth=depth,
                   size=32)
        assert (depth < np.inf).sum() > 0
        assert depth.min() == pytest.approx(0.3)

    def test_early_z_off_shades_occluded(self):
        depth = np.full((32, 32), np.inf)
        raster_one([[0, 0, 0.2], [30, 0, 0.2], [0, 30, 0.2]], depth=depth,
                   size=32)
        behind = raster_one([[0, 0, 0.8], [30, 0, 0.8], [0, 30, 0.8]],
                            depth=depth, size=32, early_z=False)
        assert behind.count > 0


class TestOrderingAndWarps:
    def test_resolve_order_groups_tiles(self):
        fb = raster_one([[0, 0, 0.5], [63, 0, 0.5], [0, 63, 0.5]])
        order = resolve_fragment_order(fb, width=64, tile_size=16)
        tx = fb.x[order] // 16
        ty = fb.y[order] // 16
        tile_ids = ty * 4 + tx
        # Tile ids must be non-decreasing runs (each tile contiguous).
        changes = np.count_nonzero(np.diff(tile_ids))
        assert changes == len(np.unique(tile_ids)) - 1

    def test_quads_adjacent_in_order(self):
        fb = raster_one([[0, 0, 0.5], [63, 0, 0.5], [0, 63, 0.5]])
        order = resolve_fragment_order(fb, width=64, tile_size=16)
        x, y = fb.x[order], fb.y[order]
        # Consecutive fragments are mostly within the same or adjacent quad.
        dist = np.abs(np.diff(x // 2)) + np.abs(np.diff(y // 2))
        assert np.median(dist) <= 1.0

    def test_empty_order(self):
        fb = FragmentBuffer.empty(("uv",))
        assert len(resolve_fragment_order(fb, 64)) == 0

    def test_warp_slices(self):
        slices = warp_slices(70)
        assert len(slices) == 3
        assert slices[-1] == slice(64, 70)

    def test_concatenate_empty(self):
        assert FragmentBuffer.concatenate([]).count == 0


class TestLoD:
    def test_magnified_texture_lod_zero(self):
        lod = lod_from_gradients(np.array([0.001]), np.array([0.0]),
                                 np.array([0.0]), np.array([0.001]), 64, 64)
        assert lod[0] == 0.0

    def test_one_texel_per_pixel_lod_zero(self):
        lod = lod_from_gradients(np.array([1 / 64]), np.array([0.0]),
                                 np.array([0.0]), np.array([1 / 64]), 64, 64)
        assert lod[0] == pytest.approx(0.0, abs=1e-9)

    def test_two_texels_per_pixel_lod_one(self):
        lod = lod_from_gradients(np.array([2 / 64]), np.array([0.0]),
                                 np.array([0.0]), np.array([0.0]), 64, 64)
        assert lod[0] == pytest.approx(1.0)

    def test_anisotropy_takes_max(self):
        lod = lod_from_gradients(np.array([8 / 64]), np.array([0.0]),
                                 np.array([0.0]), np.array([1 / 64]), 64, 64)
        assert lod[0] == pytest.approx(3.0)

    def test_select_mip_clamps(self):
        levels = select_mip(np.array([0.4, 5.7, 99.0]), num_levels=4)
        assert levels.tolist() == [0, 3, 3]
