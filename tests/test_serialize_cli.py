"""Tests for trace serialization and the command-line driver."""

import gzip
import json
import os

import numpy as np
import pytest

from repro.api import simulate
from repro.cli import main
from repro.compute import build_vio_kernels
from repro.core import CRISP
from repro.isa import (
    load_metadata,
    load_traces,
    save_traces,
    traces_equal,
)
from repro.isa.serialize import _decode_lines, _encode_lines


class TestLineCoding:
    def test_roundtrip(self):
        lines = [128, 256, 384, 1024, 99 * 128]
        assert _decode_lines(_encode_lines(lines)) == lines

    def test_empty(self):
        assert _decode_lines(_encode_lines([])) == []

    def test_consecutive_compresses_to_small_deltas(self):
        enc = _encode_lines([1000 * 128, 1001 * 128, 1002 * 128])
        assert enc[1:] == [128, 128]


class TestSaveLoad:
    def test_roundtrip_compute(self, tmp_path):
        kernels = build_vio_kernels()
        path = str(tmp_path / "vio.gz")
        save_traces(path, kernels)
        loaded = load_traces(path)
        assert traces_equal(kernels, loaded)

    def test_roundtrip_graphics(self, tmp_path):
        crisp = CRISP()
        frame = crisp.trace_scene("PT", "2k")
        path = str(tmp_path / "pt.gz")
        save_traces(path, frame.kernels)
        loaded = load_traces(path)
        assert traces_equal(frame.kernels, loaded)
        # Replay is cycle-identical.
        assert simulate(config=crisp.config,
                        streams={0: frame.kernels}).stats.cycles == \
            simulate(config=crisp.config,
                     streams={0: loaded}).stats.cycles

    def test_roundtrip_nano_frame(self, tmp_path):
        """Cached-by-trace-file campaign jobs rely on save/load returning
        the kernels bit-exactly; verify on a full nano-res frame."""
        crisp = CRISP()
        frame = crisp.trace_scene("SPL", "nano")
        path = str(tmp_path / "spl-nano.gz")
        save_traces(path, frame.kernels,
                    metadata={"scene": "SPL", "res": "nano"})
        loaded = load_traces(path)
        assert traces_equal(frame.kernels, loaded)
        assert load_metadata(path) == {"scene": "SPL", "res": "nano"}
        # A second save of the loaded kernels is structurally identical.
        path2 = str(tmp_path / "spl-nano-2.gz")
        save_traces(path2, loaded)
        assert traces_equal(load_traces(path2), frame.kernels)

    def test_metadata(self, tmp_path):
        path = str(tmp_path / "t.gz")
        save_traces(path, build_vio_kernels()[:1], metadata={"a": 1})
        assert load_metadata(path) == {"a": 1}

    def test_depends_on_prev_preserved(self, tmp_path):
        crisp = CRISP()
        frame = crisp.trace_scene("SPL", "2k")
        path = str(tmp_path / "spl.gz")
        save_traces(path, frame.kernels)
        loaded = load_traces(path)
        assert [k.depends_on_prev for k in loaded] == \
            [k.depends_on_prev for k in frame.kernels]

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces(str(tmp_path / "x.gz"), [])

    def test_rejects_wrong_version(self, tmp_path):
        path = str(tmp_path / "bad.gz")
        with gzip.open(path, "wt") as f:
            json.dump({"version": 99, "kernels": []}, f)
        with pytest.raises(ValueError, match="version"):
            load_traces(path)

    def test_traces_equal_detects_difference(self):
        a = build_vio_kernels()
        b = build_vio_kernels()
        assert traces_equal(a, b)
        assert not traces_equal(a, a[:-1])


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SPL" in out and "VIO" in out and "fg-even" in out

    def test_render_and_simulate_roundtrip(self, tmp_path, capsys):
        trace = str(tmp_path / "spl.gz")
        img = str(tmp_path / "spl.ppm")
        assert main(["render", "SPL", "--res", "2k",
                     "--save-trace", trace, "--out", img]) == 0
        assert os.path.exists(trace)
        with open(img, "rb") as f:
            assert f.readline().strip() == b"P6"
        csv_path = str(tmp_path / "stats.csv")
        assert main(["simulate", "--graphics", trace,
                     "--csv", csv_path]) == 0
        assert os.path.exists(csv_path)
        out = capsys.readouterr().out
        assert "simulated" in out

    def test_trace_compute(self, tmp_path, capsys):
        trace = str(tmp_path / "holo.gz")
        assert main(["trace-compute", "HOLO", "--save-trace", trace]) == 0
        assert len(load_traces(trace)) > 0

    def test_concurrent_simulate(self, tmp_path, capsys):
        g = str(tmp_path / "g.gz")
        c = str(tmp_path / "c.gz")
        main(["render", "SPL", "--save-trace", g])
        main(["trace-compute", "VIO", "--save-trace", c])
        assert main(["simulate", "--graphics", g, "--compute", c,
                     "--policy", "mps"]) == 0
        out = capsys.readouterr().out
        assert "stream 1 (compute)" in out

    def test_simulate_without_traces_errors(self, capsys):
        assert main(["simulate"]) == 2

    def test_figure_fig7(self, capsys):
        assert main(["figure", "fig7"]) == 0
        assert "mip0 loads: 4" in capsys.readouterr().out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "CRISP" in capsys.readouterr().out

    def test_render_no_lod_flag(self, tmp_path, capsys):
        assert main(["render", "SPL", "--no-lod"]) == 0

    def test_unknown_scene_rejected(self):
        with pytest.raises(SystemExit):
            main(["render", "NOPE"])
