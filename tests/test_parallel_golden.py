"""Bit-identity gate for the sharded parallel engine.

``repro.parallel.run_sharded`` promises results *bit-identical* to the
serial engine for every partition policy: the MPS family (mps, mig, tap)
actually shards, the rest fall back serially.  These tests replay the
reference workload (sponza + hologram at nano on JetsonOrin-mini) through
``workers=2`` and ``workers=4`` and compare the full ``GPUStats.to_dict()``
tree against the same ``tests/golden/`` snapshots the serial engine is
pinned to — one source of truth for both engines.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import simulate
from repro.config import get_preset
from repro.core.platform import collect_streams
from repro.parallel import run_sharded
from repro.parallel.worker import fork_available

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")
POLICIES = ("shared", "mps", "mig", "fg-even", "warped-slicer", "tap")
#: Policies whose SM assignment is disjoint per stream, hence shardable.
SHARDED = ("mps", "mig", "tap")


@pytest.fixture(scope="module")
def reference_workload():
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


def _golden(policy: str) -> dict:
    path = os.path.join(GOLDEN_DIR, "sponza_hologram_nano_%s.json" % policy)
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def _canonical(stats) -> dict:
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


@pytest.mark.parametrize("policy", POLICIES)
def test_workers2_bit_identical(reference_workload, policy):
    """workers=2 must reproduce the serial golden stats for every policy —
    sharded where the plan allows, serial fallback where it doesn't."""
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy=policy,
                      workers=2, backend="inline")
    assert _canonical(result.stats) == _golden(policy), (
        "sharded run diverged from serial goldens under policy=%s" % policy)
    report = result.parallel
    if policy in SHARDED:
        assert report.engaged and report.num_shards == 2
        assert report.fallback_reason is None
        assert report.replayed_ops > 0 and report.rounds > 0
    else:
        assert not report.engaged
        assert report.fallback_reason


@pytest.mark.parametrize("policy", SHARDED)
def test_workers4_bit_identical(reference_workload, policy):
    """More workers than streams: shards clamp to one stream each and the
    result stays bit-identical."""
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy=policy,
                      workers=4, backend="inline")
    assert _canonical(result.stats) == _golden(policy)
    assert result.parallel.engaged
    # Two streams -> at most two shards regardless of requested workers.
    assert result.parallel.num_shards == 2


@pytest.mark.skipif(not fork_available(),
                    reason="fork start method unavailable")
def test_process_backend_bit_identical(reference_workload):
    """The forked-worker backend must match the inline one exactly."""
    config, streams = reference_workload
    from repro.core.platform import make_policy
    policy = make_policy("mps", config, sorted(streams))
    stats, _, report = run_sharded(config, streams, policy=policy,
                                   workers=2, backend="process")
    assert report.engaged and report.backend == "process"
    assert _canonical(stats) == _golden("mps")


def test_telemetry_forces_serial(reference_workload):
    """Telemetry hooks need the serial loop; the engine must notice."""
    from repro.telemetry import Telemetry
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy="mps",
                      workers=2, telemetry=Telemetry(sample_interval=1000))
    assert not result.parallel.engaged
    assert "telemetry" in result.parallel.fallback_reason
