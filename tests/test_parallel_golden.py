"""Bit-identity gate for the sharded parallel engine.

``repro.parallel.run_sharded`` promises results *bit-identical* to the
serial engine for every partition policy.  The MPS family (mps, mig, tap)
shards by stream; everything else — and every telemetry-on run — shards
by SM group, with the coordinator hosting CTA scheduling, policy epochs
and telemetry hooks.  A shard that cannot prove serial branch-identity
(EpochUnsafeError, e.g. an L1 MSHR file saturated with deferred fills)
aborts the sharded attempt and the run is redone serially — still
bit-identical, reported via ``ShardReport.restarted``.

These tests replay the reference workload (sponza + hologram at nano on
JetsonOrin-mini) through both shard modes at ``workers=2``/``4`` and
compare the full ``GPUStats.to_dict()`` tree against the same
``tests/golden/`` snapshots the serial engine is pinned to — one source
of truth for both engines.  Telemetry-on runs additionally compare the
structured run log and trace events byte-for-byte.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import simulate
from repro.config import get_preset
from repro.core.platform import collect_streams, make_policy
from repro.parallel import ExecutionPlan, run_sharded
from repro.parallel.worker import fork_available
from repro.telemetry import Telemetry

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")
POLICIES = ("shared", "mps", "mig", "fg-even", "warped-slicer", "tap")
#: Policies whose SM assignment is disjoint per stream: stream-shardable.
STREAM_SHARDED = ("mps", "mig", "tap")
#: Co-scheduling policies: shard by SM group instead.
SM_SHARDED = ("shared", "fg-even", "warped-slicer")


@pytest.fixture(scope="module")
def reference_workload():
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


def _golden(policy: str) -> dict:
    path = os.path.join(GOLDEN_DIR, "sponza_hologram_nano_%s.json" % policy)
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def _canonical(stats) -> dict:
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


def _sharded(workers: int, shard_by: str = "auto") -> ExecutionPlan:
    return ExecutionPlan(engine="sharded", workers=workers,
                         shard_by=shard_by)


@pytest.mark.parametrize("policy", POLICIES)
def test_workers2_bit_identical(reference_workload, policy):
    """workers=2 must reproduce the serial golden stats for every policy.

    Every policy now gets a shard plan (stream mode for the MPS family,
    sm mode for the co-scheduling policies); a plan that turns out
    epoch-unsafe at run time restarts serially and must *still* match.
    """
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy=policy,
                      execution=_sharded(2))
    assert _canonical(result.stats) == _golden(policy), (
        "sharded run diverged from serial goldens under policy=%s" % policy)
    report = result.execution
    if policy in STREAM_SHARDED:
        assert report.engaged and report.num_shards == 2
        assert report.mode == "stream"
        assert report.fallback_reason is None
        assert report.replayed_ops > 0 and report.rounds > 0
    else:
        # Planned in sm mode; on this workload the co-scheduled streams
        # saturate the per-SM L1 MSHR file with deferred fills, so the
        # shards bail epoch-unsafe and the run is redone serially.
        assert report.mode == "sm"
        assert report.engaged or report.restarted
        if report.restarted:
            assert report.refusal is not None
            assert report.refusal.code == "epoch-unsafe"


@pytest.mark.parametrize("policy", STREAM_SHARDED)
def test_workers4_bit_identical(reference_workload, policy):
    """More workers than streams: shards clamp to one stream each and the
    result stays bit-identical."""
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy=policy,
                      execution=_sharded(4))
    assert _canonical(result.stats) == _golden(policy)
    assert result.execution.engaged
    # Two streams -> at most two shards regardless of requested workers.
    assert result.execution.num_shards == 2


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("policy", STREAM_SHARDED)
def test_sm_mode_bit_identical(reference_workload, policy, workers):
    """Forcing shard_by='sm' runs the SM-group coordinator for policies
    that would normally stream-shard — and must match the same goldens."""
    config, streams = reference_workload
    result = simulate(config=config, streams=streams, policy=policy,
                      execution=_sharded(workers, shard_by="sm"))
    assert _canonical(result.stats) == _golden(policy), (
        "sm-mode run diverged from serial goldens under policy=%s" % policy)
    report = result.execution
    assert report.engaged and report.mode == "sm"
    assert report.num_shards == min(workers, config.num_sms)


@pytest.mark.skipif(not fork_available(),
                    reason="fork start method unavailable")
def test_process_backend_bit_identical(reference_workload):
    """The forked-worker backend must match the inline one exactly."""
    config, streams = reference_workload
    policy = make_policy("mps", config, sorted(streams))
    stats, _, report = run_sharded(
        config, streams, policy=policy,
        execution=ExecutionPlan(engine="process", workers=2))
    assert report.engaged and report.backend == "process"
    assert report.mode == "stream"
    assert _canonical(stats) == _golden("mps")


@pytest.mark.skipif(not fork_available(),
                    reason="fork start method unavailable")
def test_process_backend_sm_mode_bit_identical(reference_workload):
    config, streams = reference_workload
    policy = make_policy("tap", config, sorted(streams))
    stats, _, report = run_sharded(
        config, streams, policy=policy,
        execution=ExecutionPlan(engine="process", workers=2, shard_by="sm"))
    assert report.engaged and report.backend == "process"
    assert report.mode == "sm"
    assert _canonical(stats) == _golden("tap")


def _batched_retirement_workload(fp: int = 64, loads: int = 0):
    """Two streams of uniform compute kernels: every CTA in a wave runs
    the same instruction stream, so whole waves retire on a single
    coordinated cycle.  The speculative sm-mode coordinator chains those
    batched retirements through one round instead of paying a full
    advance/replay sweep per CTA."""
    from repro.compute import DeviceMemory, KernelBuilder

    config = get_preset("JetsonOrin-mini")
    streams = {}
    for sid in range(2):
        mem = DeviceMemory(region=8 + sid)
        kb = KernelBuilder("batch%d" % sid, grid=16, block=32,
                           regs_per_thread=16)
        if loads:
            buf = mem.buffer("a", 64 * 1024)
            for _ in range(loads):
                kb.load(buf, pattern="coalesced", words=4)
        kb.fp(fp)
        streams[sid] = [kb.build()]
    return config, streams


@pytest.mark.parametrize("policy", SM_SHARDED[:2] + ("mps",))
def test_batched_retirements_amortize_rounds(policy):
    """Speculation acceptance gate: on a batched-retirement workload the
    sm-mode coordinator must spend fewer than one round per two CTA
    retirements (rpr < 0.5) — retire-per-round coordination would score
    rpr >= 1 — while staying bit-identical to serial."""
    config, streams = _batched_retirement_workload()
    serial = simulate(config=config, streams=streams, policy=policy)
    sharded = simulate(config=config, streams=streams, policy=policy,
                       execution=_sharded(2, shard_by="sm"))
    assert _canonical(sharded.stats) == _canonical(serial.stats)
    report = sharded.execution
    assert report.engaged and report.mode == "sm"
    assert report.retirements > 0
    rpr = report.rounds / report.retirements
    assert rpr < 0.5, (
        "rounds-per-retirement %.3f >= 0.5 (rounds=%d retirements=%d)"
        % (rpr, report.rounds, report.retirements))


@pytest.mark.parametrize("policy", ("fg-even", "mps"))
def test_batched_retirements_with_memory_traffic(policy):
    """The rpr < 0.5 bar must survive cross-shard memory traffic: the
    loads force patch rounds, yet batched waves still amortize them."""
    config, streams = _batched_retirement_workload(fp=48, loads=2)
    serial = simulate(config=config, streams=streams, policy=policy)
    sharded = simulate(config=config, streams=streams, policy=policy,
                       execution=_sharded(2, shard_by="sm"))
    assert _canonical(sharded.stats) == _canonical(serial.stats)
    report = sharded.execution
    assert report.engaged and report.mode == "sm"
    assert report.replayed_ops > 0, "workload generated no shard traffic"
    rpr = report.rounds / report.retirements
    assert rpr < 0.5, (
        "rounds-per-retirement %.3f >= 0.5 (rounds=%d retirements=%d)"
        % (rpr, report.rounds, report.retirements))


def _telemetry_capture(monkeypatch, config, streams, policy, execution):
    """Run with a fresh recorder under a frozen clock; return the record
    trees (the run-log header stamps wall-clock time)."""
    import time as _time
    monkeypatch.setattr(_time, "time", lambda: 1700000000.0)
    tel = Telemetry(sample_interval=500)
    result = simulate(config=config, streams=streams, policy=policy,
                      telemetry=tel, execution=execution)
    return result, tel.runlog.records, tel.sink.events


def test_telemetry_shards_in_sm_mode(reference_workload, monkeypatch):
    """Telemetry no longer forces the serial loop: the auto planner picks
    sm mode and the recorded run log and trace events are byte-identical
    to a serial run's."""
    config, streams = reference_workload
    serial, serial_log, serial_events = _telemetry_capture(
        monkeypatch, config, streams, "mps",
        ExecutionPlan(engine="serial"))
    sharded, shard_log, shard_events = _telemetry_capture(
        monkeypatch, config, streams, "mps", _sharded(2))
    assert sharded.execution.engaged
    assert sharded.execution.mode == "sm"
    assert _canonical(sharded.stats) == _canonical(serial.stats)
    assert json.dumps(shard_log, sort_keys=True) == \
        json.dumps(serial_log, sort_keys=True)
    assert json.dumps(shard_events, sort_keys=True) == \
        json.dumps(serial_events, sort_keys=True)


def test_telemetry_repartition_identical(reference_workload, monkeypatch):
    """TAP repartitions mid-run via coordinator epochs; the repartition
    records must land identically under sharding."""
    config, streams = reference_workload
    _, serial_log, _ = _telemetry_capture(
        monkeypatch, config, streams, "tap", ExecutionPlan(engine="serial"))
    sharded, shard_log, _ = _telemetry_capture(
        monkeypatch, config, streams, "tap", _sharded(2))
    assert sharded.execution.engaged
    repartitions = [r for r in shard_log if r.get("kind") == "repartition"]
    assert repartitions == [r for r in serial_log
                            if r.get("kind") == "repartition"]
    assert json.dumps(shard_log, sort_keys=True) == \
        json.dumps(serial_log, sort_keys=True)


def test_epoch_unsafe_restart_resets_telemetry(reference_workload,
                                               monkeypatch):
    """A serial redo after EpochUnsafeError must produce exactly the
    records a serial-only run would — no residue from the aborted shards."""
    config, streams = reference_workload
    _, serial_log, serial_events = _telemetry_capture(
        monkeypatch, config, streams, "shared",
        ExecutionPlan(engine="serial"))
    sharded, shard_log, shard_events = _telemetry_capture(
        monkeypatch, config, streams, "shared", _sharded(2))
    assert _canonical(sharded.stats) == _golden("shared")
    assert json.dumps(shard_log, sort_keys=True) == \
        json.dumps(serial_log, sort_keys=True)
    assert json.dumps(shard_events, sort_keys=True) == \
        json.dumps(serial_events, sort_keys=True)
