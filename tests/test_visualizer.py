"""Tests for the visualizer-log writer/parser."""

import json

import pytest

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import COMPUTE_STREAM, CRISP, GRAPHICS_STREAM
from repro.harness.visualizer import (
    VisualizerLog,
    ascii_series,
    dump_log,
    load_log,
)
from repro.isa import DataClass
from repro.timing import GPU


@pytest.fixture(scope="module")
def sampled_run():
    crisp = CRISP(JETSON_ORIN_MINI)
    frame = crisp.trace_scene("SPL", "2k")
    vio = crisp.trace_compute("VIO")
    gpu = GPU(JETSON_ORIN_MINI, sample_interval=500)
    gpu.add_stream(GRAPHICS_STREAM, frame.kernels)
    gpu.add_stream(COMPUTE_STREAM, vio)
    return gpu.run()


class TestDumpLoad:
    def test_roundtrip_counts(self, sampled_run, tmp_path):
        path = str(tmp_path / "run.vlog")
        n = dump_log(path, sampled_run, metadata={"pair": "SPL+VIO"})
        log = load_log(path)
        assert log.num_records == n
        assert log.cycles == sampled_run.cycles
        assert log.metadata == {"pair": "SPL+VIO"}

    def test_occupancy_series_fractions(self, sampled_run, tmp_path):
        path = str(tmp_path / "run.vlog")
        dump_log(path, sampled_run)
        log = load_log(path)
        series = log.occupancy_series(GRAPHICS_STREAM)
        assert series
        assert all(0.0 <= f <= 1.0 for _, f in series)
        cycles = [c for c, _ in series]
        assert cycles == sorted(cycles)

    def test_l2_class_series(self, sampled_run, tmp_path):
        path = str(tmp_path / "run.vlog")
        dump_log(path, sampled_run)
        log = load_log(path)
        tex = log.l2_class_series(DataClass.TEXTURE)
        assert any(f > 0 for _, f in tex)

    def test_l2_stream_series_sums_to_one(self, sampled_run, tmp_path):
        path = str(tmp_path / "run.vlog")
        dump_log(path, sampled_run)
        log = load_log(path)
        g = dict(log.l2_stream_series(GRAPHICS_STREAM))
        c = dict(log.l2_stream_series(COMPUTE_STREAM))
        for cycle in g:
            total = g[cycle] + c[cycle]
            assert total == pytest.approx(1.0, abs=1e-9) or total == 0.0

    def test_unsampled_run_rejected(self, tmp_path):
        crisp = CRISP(JETSON_ORIN_MINI)
        stats = simulate(config=JETSON_ORIN_MINI,
                         streams={COMPUTE_STREAM: crisp.trace_compute("VIO")}).stats
        with pytest.raises(ValueError, match="sample"):
            dump_log(str(tmp_path / "x.vlog"), stats)

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = str(tmp_path / "bad.vlog")
        with open(path, "w") as f:
            f.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="mystery"):
            load_log(path)


class TestAscii:
    def test_renders_bars(self):
        out = ascii_series([(0, 0.5), (100, 1.0)], width=10, label="occ")
        lines = out.splitlines()
        assert lines[0] == "occ"
        assert "#####" in lines[1]
        assert "##########" in lines[2]

    def test_empty_series(self):
        assert "(empty)" in ascii_series([], label="x")

    def test_clamps_out_of_range(self):
        out = ascii_series([(0, 1.7)], width=10)
        assert "##########" in out
