"""Tests for the GPU partitioning policies (MPS / MiG / FG)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import RTX_3070_MINI
from repro.core import (
    FGDynamicPolicy,
    FGEvenPolicy,
    MPSPolicy,
    MiGPolicy,
    even_bank_split,
    even_sm_split,
)
from repro.memory import L2Cache
from repro.timing import GPUStats, SM


class TestEvenSplit:
    def test_even_division(self):
        split = even_sm_split(8, [0, 1])
        assert split[0] == [0, 1, 2, 3]
        assert split[1] == [4, 5, 6, 7]

    def test_remainder_to_early_streams(self):
        split = even_sm_split(7, [0, 1])
        assert len(split[0]) == 4
        assert len(split[1]) == 3

    def test_rejects_more_streams_than_sms(self):
        with pytest.raises(ValueError):
            even_sm_split(1, [0, 1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            even_sm_split(4, [])

    @given(st.integers(2, 46), st.integers(1, 4))
    def test_property_partition_covers_all_sms(self, num_sms, n_streams):
        if num_sms < n_streams:
            return
        split = even_sm_split(num_sms, list(range(n_streams)))
        all_sms = sorted(s for sms in split.values() for s in sms)
        assert all_sms == list(range(num_sms))


class TestMPS:
    def test_allowed_sms(self):
        p = MPSPolicy({0: [0, 1], 1: [2, 3]})
        assert list(p.allowed_sms(0, 4)) == [0, 1]
        assert list(p.allowed_sms(1, 4)) == [2, 3]

    def test_unassigned_stream_gets_all(self):
        p = MPSPolicy({0: [0, 1]})
        assert list(p.allowed_sms(9, 4)) == [0, 1, 2, 3]

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            MPSPolicy({0: [0, 1], 1: [1, 2]})

    def test_rejects_empty_assignment(self):
        with pytest.raises(ValueError):
            MPSPolicy({})
        with pytest.raises(ValueError):
            MPSPolicy({0: []})

    def test_even_constructor(self):
        p = MPSPolicy.even(8, [0, 1])
        assert len(list(p.allowed_sms(0, 8))) == 4

    def test_no_quota(self):
        p = MPSPolicy.even(8, [0, 1])
        sm = SM(0, RTX_3070_MINI, L2Cache(RTX_3070_MINI), GPUStats())
        assert p.quota(sm, 0, RTX_3070_MINI) is None

    def test_interleaves(self):
        assert MPSPolicy.even(8, [0, 1]).interleave


class TestMiG:
    def test_partitions_banks(self):
        p = MiGPolicy.even(8, [0, 1], num_banks=8)
        l2 = L2Cache(RTX_3070_MINI)
        p.configure_memory(l2, [0, 1])
        banks0 = {l2.bank_of(i * 128, 0) for i in range(64)}
        banks1 = {l2.bank_of(i * 128, 1) for i in range(64)}
        assert banks0.isdisjoint(banks1)
        assert len(banks0) == 4

    def test_default_bank_split_from_l2(self):
        p = MiGPolicy.even(8, [0, 1])
        l2 = L2Cache(RTX_3070_MINI)
        p.configure_memory(l2, [0, 1])
        assert l2._bank_assignment is not None

    def test_bank_split_helper(self):
        split = even_bank_split(8, [0, 1])
        assert split[0] == [0, 1, 2, 3]


class TestFG:
    def sm(self):
        return SM(0, RTX_3070_MINI, L2Cache(RTX_3070_MINI), GPUStats())

    def test_even_fractions(self):
        p = FGEvenPolicy.even([0, 1])
        q = p.quota(self.sm(), 0, RTX_3070_MINI)
        assert q.threads == RTX_3070_MINI.max_threads_per_sm // 2
        assert q.warps == RTX_3070_MINI.max_warps_per_sm // 2
        assert q.registers == RTX_3070_MINI.registers_per_sm // 2

    def test_rejects_over_one(self):
        with pytest.raises(ValueError):
            FGEvenPolicy({0: 0.7, 1: 0.7})

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FGEvenPolicy({0: 0.0})

    def test_unknown_stream_unbounded(self):
        p = FGEvenPolicy({0: 0.5})
        assert p.quota(self.sm(), 3, RTX_3070_MINI) is None

    def test_dynamic_set_fraction(self):
        p = FGDynamicPolicy({0: 0.5, 1: 0.5})
        p.set_fraction(0, 0.75, cycle=100)
        q = p.quota(self.sm(), 0, RTX_3070_MINI)
        assert q.threads == int(RTX_3070_MINI.max_threads_per_sm * 0.75)
        assert p.ratio_history == [(100, {0: 0.75, 1: 0.5})]

    def test_dynamic_rejects_bad_fraction(self):
        p = FGDynamicPolicy({0: 0.5})
        with pytest.raises(ValueError):
            p.set_fraction(0, 0.0)
        with pytest.raises(ValueError):
            p.set_fraction(0, 1.5)

    def test_per_sm_override(self):
        p = FGDynamicPolicy({0: 0.5, 1: 0.5})
        p.set_sm_override(0, {0: 0.25, 1: 0.75})
        sm0 = self.sm()
        q = p.quota(sm0, 0, RTX_3070_MINI)
        assert q.threads == RTX_3070_MINI.max_threads_per_sm // 4
        p.clear_sm_overrides()
        q2 = p.quota(sm0, 0, RTX_3070_MINI)
        assert q2.threads == RTX_3070_MINI.max_threads_per_sm // 2
