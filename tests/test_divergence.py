"""Tests for warp-divergence support in the kernel DSL."""

import pytest

from repro.compute import DeviceMemory, KernelBuilder
from repro.isa import Op


@pytest.fixture()
def mem():
    return DeviceMemory(region=8)


class TestDivergent:
    def test_branch_instruction_emitted(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .fp(2)
             .divergent(0.5, lambda b: b.fp(4))
             .build())
        ops = [i.op for i in k.ctas[0].warps[0]]
        assert Op.BRA in ops

    def test_body_runs_with_reduced_mask(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .divergent(0.5, lambda b: b.fp(3))
             .build())
        body_insts = [i for i in k.ctas[0].warps[0]
                      if i.op is Op.FFMA]
        assert all(i.active == 16 for i in body_insts)

    def test_outer_ops_keep_full_mask(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .fp(1)
             .divergent(0.25, lambda b: b.fp(1))
             .fp(1)
             .build())
        ffma = [i for i in k.ctas[0].warps[0] if i.op is Op.FFMA]
        assert [i.active for i in ffma] == [32, 8, 32]

    def test_divergent_load_coalesces_fewer_lines(self, mem):
        buf = mem.buffer("x", 1 << 20)
        full = (KernelBuilder("f", 1, 32)
                .load(buf, "strided").build())
        div = (KernelBuilder("d", 1, 32)
               .divergent(0.25, lambda b: b.load(buf, "strided")).build())
        full_ldg = [i for i in full.ctas[0].warps[0] if i.op is Op.LDG][0]
        div_ldg = [i for i in div.ctas[0].warps[0] if i.op is Op.LDG][0]
        assert div_ldg.mem.num_transactions < full_ldg.mem.num_transactions
        assert div_ldg.mem.num_transactions == 8

    def test_nested_divergence(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .divergent(0.5, lambda b: b.divergent(0.5, lambda c: c.fp(1)))
             .build())
        ffma = [i for i in k.ctas[0].warps[0] if i.op is Op.FFMA]
        assert ffma[0].active == 8

    def test_minimum_one_lane(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .divergent(0.001, lambda b: b.fp(1))
             .build())
        ffma = [i for i in k.ctas[0].warps[0] if i.op is Op.FFMA]
        assert ffma[0].active == 1

    def test_rejects_bad_fraction(self, mem):
        b = KernelBuilder("k", 1, 32)
        with pytest.raises(ValueError):
            b.divergent(0.0, lambda s: s.fp(1))
        with pytest.raises(ValueError):
            b.divergent(1.5, lambda s: s.fp(1))

    def test_rejects_empty_body(self, mem):
        with pytest.raises(ValueError, match="empty"):
            KernelBuilder("k", 1, 32).divergent(0.5, lambda s: None)

    def test_dependency_chain_crosses_region(self, mem):
        k = (KernelBuilder("k", 1, 32)
             .fp(1)
             .divergent(0.5, lambda b: b.fp(1))
             .fp(1)
             .build())
        insts = list(k.ctas[0].warps[0])
        ffma = [i for i in insts if i.op is Op.FFMA]
        # Later FFMA reads the register the divergent body wrote.
        assert ffma[2].srcs[0] == ffma[1].dst

    def test_simulates(self, mem):
        from repro.config import JETSON_ORIN_MINI
        from repro.timing import simulate
        buf = mem.buffer("x", 1 << 16)
        k = (KernelBuilder("k", 4, 128)
             .load(buf)
             .divergent(0.3, lambda b: b.fp(10).load(buf, "random"))
             .store(buf)
             .build())
        stats = simulate(JETSON_ORIN_MINI, {0: [k]})
        assert stats.stream(0).kernels_completed == 1

    def test_vio_corner_uses_divergence(self):
        from repro.compute import build_vio_kernels
        corner = [k for k in build_vio_kernels() if k.name == "vio_corner"][0]
        assert Op.BRA in corner.instruction_mix()
