"""repro.telemetry: zero-overhead-when-off contract, sampling invariants,
trace structure, heartbeats, and the CLI surface."""

import json
import os

import pytest

from repro.api import simulate
from repro.config import get_preset
from repro.core.platform import collect_streams
from repro.telemetry import (
    NULL_TELEMETRY, READY, STALL_REASONS, Telemetry, read_jsonl,
)

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")


@pytest.fixture(scope="module")
def reference_workload():
    config = get_preset("JetsonOrin-mini")
    streams = collect_streams(config, scene="SPL", res="nano",
                              compute="HOLO")
    return config, streams


@pytest.fixture(scope="module")
def telemetry_run(reference_workload):
    """One fully instrumented mps run, shared by the assertion tests."""
    config, streams = reference_workload
    tel = Telemetry(sample_interval=1000)
    stats = simulate(config=config, streams=streams, policy="mps",
                     telemetry=tel).stats
    return config, stats, tel


def _golden(policy):
    path = os.path.join(GOLDEN_DIR,
                        "sponza_hologram_nano_%s.json" % policy)
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def _canonical(stats):
    return json.loads(json.dumps(stats.to_dict(), sort_keys=True))


class TestZeroOverheadContract:
    def test_off_run_matches_golden(self, reference_workload):
        """A run with no telemetry argument (NULL recorder) is bit-identical
        to the pre-telemetry golden snapshot."""
        config, streams = reference_workload
        stats = simulate(config=config, streams=streams, policy="mps").stats
        assert _canonical(stats) == _golden("mps")

    def test_instrumented_run_still_matches_golden(self, telemetry_run):
        """Telemetry observes; it must never perturb simulated behaviour."""
        _, stats, _ = telemetry_run
        assert _canonical(stats) == _golden("mps")

    def test_null_is_module_singleton_with_flags_off(self):
        from repro.timing import GPU
        config = get_preset("JetsonOrin-mini")
        gpu = GPU(config)
        assert gpu.telemetry is NULL_TELEMETRY
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.sampling is False
        assert NULL_TELEMETRY.spans is False
        assert NULL_TELEMETRY.sample_interval is None
        assert NULL_TELEMETRY.close() == {}


class TestStallAttribution:
    def test_breakdowns_sum_to_stall_samples(self, telemetry_run):
        _, _, tel = telemetry_run
        samples = tel.metrics.samples
        assert samples, "sampling enabled but no samples taken"
        for record in samples:
            for row in record["streams"].values():
                assert sum(row["stalls"].values()) == row["stall_samples"]
                assert READY not in row["stalls"]

    def test_reasons_are_from_taxonomy(self, telemetry_run):
        _, _, tel = telemetry_run
        for record in tel.metrics.samples:
            for row in record["streams"].values():
                assert set(row["stalls"]) <= set(STALL_REASONS)

    def test_totals_accumulate_sample_breakdowns(self, telemetry_run):
        _, _, tel = telemetry_run
        expect = {}
        for record in tel.metrics.samples:
            for sid, row in record["streams"].items():
                for reason, n in row["stalls"].items():
                    bucket = expect.setdefault(int(sid), {})
                    bucket[reason] = bucket.get(reason, 0) + n
        assert tel.metrics.stall_totals == expect

    def test_warp_accounting_is_complete(self, telemetry_run):
        """Every resident warp is classified at every sample tick."""
        _, _, tel = telemetry_run
        for record in tel.metrics.samples:
            for row in record["streams"].values():
                assert row["stall_samples"] >= 0
                assert row["ready_warps"] >= 0
                if row["warps"]:
                    assert row["stall_samples"] + row["ready_warps"] > 0


class TestSampleSeries:
    def test_interval_and_monotone_cycles(self, telemetry_run):
        _, stats, tel = telemetry_run
        cycles = [r["cycle"] for r in tel.metrics.samples]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= stats.cycles
        # Samples land no closer together than the configured interval.
        for a, b in zip(cycles, cycles[1:]):
            assert b - a >= tel.sample_interval

    def test_instruction_deltas_sum_to_final_counts(self, telemetry_run):
        _, stats, tel = telemetry_run
        for sid, sstat in stats.streams.items():
            sampled = sum(r["streams"].get(str(sid), {})
                          .get("instructions", 0)
                          for r in tel.metrics.samples)
            # Instructions issued after the last sample tick are not in the
            # series; the sampled sum can only under-count.
            assert 0 < sampled <= sstat.instructions

    def test_pull_hook_fields_present(self, telemetry_run):
        _, _, tel = telemetry_run
        config = get_preset("JetsonOrin-mini")
        for record in tel.metrics.samples:
            assert record["l1_mshr_inflight"] >= 0
            assert record["l2_mshr_inflight"] >= 0
            assert len(record["l2_bank_queues"]) == config.l2_banks
            assert record["dram_backlog"] >= 0


class TestTraceEvents:
    def test_span_pairs_balanced_by_id(self, telemetry_run):
        _, _, tel = telemetry_run
        begins = {}
        for ev in tel.sink.events:
            if ev["ph"] == "b":
                assert ev["id"] not in begins
                begins[ev["id"]] = ev
            elif ev["ph"] == "e":
                b = begins.pop(ev["id"])
                assert b["name"] == ev["name"]
                assert b["ts"] <= ev["ts"]
        assert not begins, "unclosed spans: %s" % sorted(begins)

    def test_kernel_spans_cover_all_kernels(self, reference_workload,
                                            telemetry_run):
        _, streams = reference_workload
        _, _, tel = telemetry_run
        want = sum(len(kernels) for kernels in streams.values())
        got = sum(1 for ev in tel.sink.events
                  if ev["ph"] == "b" and ev["cat"] == "kernel")
        assert got == want

    def test_cta_spans_carry_launch_to_retire(self, telemetry_run):
        _, _, tel = telemetry_run
        cta_begins = [ev for ev in tel.sink.events
                      if ev["ph"] == "b" and ev["cat"] == "cta"]
        assert cta_begins
        for ev in cta_begins:
            assert ev["pid"] == 1  # SM rows
            assert "stream" in ev["args"]

    def test_trace_file_is_valid_chrome_trace(self, telemetry_run, tmp_path):
        _, _, tel = telemetry_run
        path = str(tmp_path / "trace.json")
        tel.sink.write(path)
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        assert isinstance(doc["traceEvents"], list)
        assert {"ph", "pid", "name"} <= set(doc["traceEvents"][0])
        names = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        assert any(ev["name"] == "process_name" for ev in names)


class TestRepartitionEvents:
    def test_tap_emits_repartition_records(self, reference_workload):
        config, streams = reference_workload
        tel = Telemetry(sample_interval=None, sampling=False)
        result = simulate(config=config, streams=streams, policy="tap",
                          telemetry=tel)
        pol = result.policy
        reparts = [r for r in tel.runlog.records
                   if r["kind"] == "repartition"]
        assert len(reparts) == len(pol.partition_history)
        for record, (cycle, ratios) in zip(reparts, pol.partition_history):
            assert record["cycle"] == cycle
            assert record["detail"]["sets_per_bank"] == \
                {str(s): n for s, n in ratios.items()}
        instants = [ev for ev in tel.sink.events if ev["ph"] == "i"]
        assert len(instants) == len(reparts)


class TestRunLog:
    def test_header_and_final_records(self, telemetry_run, tmp_path):
        config, stats, tel = telemetry_run
        out = tmp_path / "tel"
        tel.out_dir = str(out)
        tel._closed = False
        paths = tel.close()
        records = read_jsonl(paths["metrics"])
        header = records[0]
        assert header["kind"] == "header"
        assert header["schema"] == 1
        assert header["config_fingerprint"] == config.fingerprint()
        assert header["policy"] == "mps"
        assert header["streams"] == [0, 1]
        final = records[-1]
        assert final["kind"] == "final"
        assert final["cycles"] == stats.cycles
        assert final["total_instructions"] == stats.total_instructions
        n_samples = sum(1 for r in records if r["kind"] == "sample")
        assert n_samples == final["samples"] == len(tel.metrics.samples)


class TestCampaignHeartbeats:
    def test_heartbeat_records(self, tmp_path):
        from repro.campaign import CampaignRunner, Job
        runner = CampaignRunner(workers=1, cache=None,
                                telemetry_dir=str(tmp_path))
        jobs = [Job(compute="VIO", config="JetsonOrin-mini")]
        campaign = runner.run(jobs)
        assert campaign.ok
        records = read_jsonl(runner.heartbeat_path)
        kinds = [r["kind"] for r in records]
        assert kinds == ["campaign_start", "job_start", "job_done",
                         "campaign_end"]
        start = records[0]
        assert start["jobs"] == 1
        assert start["campaign_id"] == campaign.campaign_id
        done = records[2]
        assert done["status"] == "ok"
        assert done["fingerprint"] == jobs[0].fingerprint()
        assert done["wall_seconds"] > 0
        end = records[3]
        assert end["executed"] == 1 and end["failed"] == 0


class TestCLISurface:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        from repro.compute import build_compute_workload
        from repro.isa import save_traces
        tmp = tmp_path_factory.mktemp("traces")
        path = str(tmp / "vio.gz")
        save_traces(path, build_compute_workload("VIO"))
        return path

    def test_simulate_telemetry_then_render(self, traced, tmp_path, capsys):
        from repro.cli import main
        tel_dir = str(tmp_path / "tel")
        assert main(["simulate", "--compute", traced,
                     "--telemetry", tel_dir]) == 0
        assert os.path.exists(os.path.join(tel_dir, "metrics.jsonl"))
        assert os.path.exists(os.path.join(tel_dir, "trace.json"))
        capsys.readouterr()
        assert main(["telemetry", tel_dir]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "kernel timeline" in out

    def test_telemetry_cmd_rejects_empty_dir(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["telemetry", str(tmp_path)]) == 2

    def test_simulate_csv_timeline_satellite(self, traced, tmp_path):
        from repro.cli import main
        csv_path = str(tmp_path / "stats.csv")
        assert main(["simulate", "--compute", traced,
                     "--sample-interval", "200", "--csv", csv_path]) == 0
        occ = str(tmp_path / "stats_occupancy_timeline.csv")
        assert os.path.exists(occ)
        with open(occ) as f:
            header = f.readline().strip().split(",")
        assert header == ["cycle", "stream", "warps", "total_warp_slots",
                          "occupancy"]
        l2 = str(tmp_path / "stats_l2_timeline.csv")
        assert os.path.exists(l2)


class TestSimrateSchema:
    def test_record_has_schema_and_fingerprint(self):
        from repro.profiling import SIMRATE_SCHEMA, simrate_record
        from repro.timing import GPUStats
        config = get_preset("JetsonOrin-mini")
        stats = GPUStats()
        stats.cycles = 100
        record = simrate_record(stats, 0.5, label="x", config=config)
        assert record["schema"] == SIMRATE_SCHEMA == 2
        assert record["config_fingerprint"] == config.fingerprint()

    def test_old_rows_tolerated(self, tmp_path):
        from repro.profiling import load_bench_doc, normalize_simrate_record
        old = {"label": "legacy", "instructions": 1, "cycles": 2,
               "wall_seconds": 0.1, "instructions_per_second": 10.0,
               "cycles_per_second": 20.0}
        fixed = normalize_simrate_record(dict(old))
        assert fixed["schema"] == 1
        assert fixed["config_fingerprint"] is None
        path = tmp_path / "BENCH_timing.json"
        path.write_text(json.dumps({"baseline": dict(old),
                                    "runs": [dict(old)]}))
        doc = load_bench_doc(str(path))
        assert doc["baseline"]["schema"] == 1
        assert doc["runs"][0]["config_fingerprint"] is None

    def test_missing_file_gives_empty_doc(self, tmp_path):
        from repro.profiling import load_bench_doc
        doc = load_bench_doc(str(tmp_path / "absent.json"))
        assert doc == {"baseline": None, "runs": []}
