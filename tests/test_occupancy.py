"""Tests for the occupancy calculator and the inspect CLI."""

import pytest

from repro.cli import main
from repro.compute import DeviceMemory, KernelBuilder
from repro.config import RTX_3070_MINI
from repro.timing import occupancy_of


def kernel(block=128, regs=32, smem=0):
    mem = DeviceMemory(region=16)
    buf = mem.buffer("x", 4096)
    return KernelBuilder("k", 4, block, regs_per_thread=regs,
                         shared_mem=smem).load(buf).fp(2).build()


class TestOccupancy:
    def test_full_occupancy_small_kernel(self):
        occ = occupancy_of(kernel(block=128, regs=16), RTX_3070_MINI)
        # 2048 threads / 128 per CTA = 16 CTAs -> 64 warps = 100%.
        assert occ.ctas_per_sm == 16
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.warps_per_sm == RTX_3070_MINI.max_warps_per_sm

    def test_register_limited(self):
        # 128 regs/thread x 128 threads = 16384/CTA -> 4 CTAs by registers.
        occ = occupancy_of(kernel(regs=128), RTX_3070_MINI)
        assert occ.limiter == "registers"
        assert occ.ctas_per_sm == 4
        assert occ.register_limited

    def test_shared_mem_limited(self):
        occ = occupancy_of(kernel(smem=50 * 1024), RTX_3070_MINI)
        assert occ.limiter == "shared_mem"
        assert occ.ctas_per_sm == RTX_3070_MINI.shared_mem_per_sm // (50 * 1024)

    def test_thread_limited(self):
        occ = occupancy_of(kernel(block=1024, regs=16), RTX_3070_MINI)
        assert occ.ctas_per_sm == 2
        assert occ.limiter in ("threads", "warps")

    def test_quota_fraction_scales(self):
        full = occupancy_of(kernel(regs=16), RTX_3070_MINI)
        half = occupancy_of(kernel(regs=16), RTX_3070_MINI,
                            quota_fraction=0.5)
        assert half.ctas_per_sm == full.ctas_per_sm // 2

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            occupancy_of(kernel(), RTX_3070_MINI, quota_fraction=0.0)

    def test_limits_cover_all_resources(self):
        occ = occupancy_of(kernel(), RTX_3070_MINI)
        assert set(occ.limits) == {"threads", "registers", "shared_mem",
                                   "warps", "cta_slots"}

    def test_nn_matmul_register_limited(self):
        """The Fig 13 claim: the NN's kernels are register-limited."""
        from repro.compute import build_nn_kernels
        mm = [k for k in build_nn_kernels(coverage=1.0)
              if k.name.endswith("_mm")][0]
        occ = occupancy_of(mm, RTX_3070_MINI)
        assert occ.register_limited
        assert occ.occupancy < 1.0


class TestInspectCLI:
    def test_inspect_prints_summary(self, tmp_path, capsys):
        trace = str(tmp_path / "vio.gz")
        main(["trace-compute", "VIO", "--save-trace", trace])
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "vio_undistort" in out
        assert "limiter" in out
        assert "compute" in out  # footprint block

    def test_inspect_graphics_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "spl.gz")
        main(["render", "SPL", "--save-trace", trace])
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "texture" in out
        assert "vs:" in out
