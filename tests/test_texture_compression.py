"""Tests for block-compressed texture addressing (BC1/BC7)."""

import numpy as np
import pytest

from repro.graphics import Camera, GraphicsPipeline, Texture2D, checkerboard
from repro.graphics.geometry import DrawCall
from repro.memory import AddressAllocator
from repro.scenes.assets import grid_mesh


def placed(tex):
    tex.place(AddressAllocator(region=12))
    return tex


class TestCompressedAddressing:
    def test_footprint_ratios(self):
        plain = Texture2D("p", checkerboard(64))
        bc1 = Texture2D("b1", checkerboard(64), compression="bc1")
        bc7 = Texture2D("b7", checkerboard(64), compression="bc7")
        assert bc1.level_bytes(0) == plain.level_bytes(0) // 8
        assert bc7.level_bytes(0) == plain.level_bytes(0) // 4

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="bc1"):
            Texture2D("x", checkerboard(8), compression="astc")

    def test_block_sharing(self):
        tex = placed(Texture2D("t", checkerboard(16), compression="bc1"))
        x = np.array([0, 1, 2, 3])
        y = np.array([0, 1, 2, 3])
        addrs = tex.texel_addresses(x, y, 0, np.zeros(4, dtype=np.int64))
        assert len(np.unique(addrs)) == 1  # one 4x4 block

    def test_adjacent_blocks_distinct(self):
        tex = placed(Texture2D("t", checkerboard(16), compression="bc1"))
        addrs = tex.texel_addresses(np.array([3, 4]), np.array([0, 0]), 0,
                                    np.zeros(2, dtype=np.int64))
        assert addrs[1] - addrs[0] == 8  # BC1 block stride

    def test_small_mips_occupy_one_block(self):
        tex = Texture2D("t", checkerboard(16), compression="bc1")
        assert tex.level_bytes(tex.num_levels - 1) == 8  # 1x1 -> one block

    def test_functional_colors_unchanged(self):
        img = checkerboard(16)
        plain = placed(Texture2D("p", img))
        comp = placed(Texture2D("c", img, compression="bc1"))
        u = np.linspace(0.05, 0.95, 10)
        c_plain, _ = plain.sample_nearest(u, u)
        c_comp, _ = comp.sample_nearest(u, u)
        assert np.array_equal(c_plain, c_comp)

    def test_layered_compressed(self):
        base = checkerboard(8)
        tex = placed(Texture2D("arr", base, layers=[base],
                               compression="bc7"))
        a0 = tex.texel_addresses(np.array([0]), np.array([0]), 0,
                                 np.array([0]))
        a1 = tex.texel_addresses(np.array([0]), np.array([0]), 0,
                                 np.array([1]))
        assert a1[0] - a0[0] == 4 * 16  # 2x2 blocks of 16B per layer


class TestCompressedTraffic:
    def _render(self, compression):
        tex = Texture2D("tex", checkerboard(64), compression=compression)
        pipe = GraphicsPipeline({"tex": tex})
        return pipe.render_frame(
            [DrawCall(grid_mesh(4, 4, extent=6.0), texture_slots=["tex"])],
            Camera(eye=(0, 2, -6)), 96, 54)

    def test_compression_reduces_tex_traffic(self):
        plain = self._render("none")
        bc1 = self._render("bc1")
        assert bc1.tex_transactions < plain.tex_transactions

    def test_compression_image_identical(self):
        plain = self._render("none")
        bc1 = self._render("bc1")
        assert np.array_equal(plain.framebuffer.as_image(),
                              bc1.framebuffer.as_image())
