"""Tests for trace generation, the pipeline front door, and the Vulkan API."""

import numpy as np
import pytest

from repro.graphics import (
    Camera,
    Device,
    Framebuffer,
    GraphicsPipeline,
    PipelineConfig,
    Texture2D,
    VulkanError,
    checkerboard,
)
from repro.isa import DataClass, Op, ShaderKind
from repro.scenes.assets import box_mesh, grid_mesh, sphere_mesh


@pytest.fixture()
def simple_setup():
    textures = {"tex": Texture2D("tex", checkerboard(64))}
    pipe = GraphicsPipeline(textures)
    cam = Camera(eye=(0, 2, -6), target=(0, 0, 0))
    return pipe, cam


def one_draw(pipe, cam, mesh=None, shader="basic", slots=("tex",), w=96, h=54):
    from repro.graphics.geometry import DrawCall
    mesh = mesh or grid_mesh(4, 4, extent=6.0)
    draw = DrawCall(mesh, texture_slots=list(slots), shader=shader)
    return pipe.render_frame([draw], cam, w, h)


class TestRenderFrame:
    def test_produces_vs_and_fs_kernels(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        kinds = [k.kind for k in res.kernels]
        assert ShaderKind.VERTEX in kinds
        assert ShaderKind.FRAGMENT in kinds

    def test_vs_kernel_pipelines_fs_waits(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        vs = [k for k in res.kernels if k.kind == ShaderKind.VERTEX][0]
        fs = [k for k in res.kernels if k.kind == ShaderKind.FRAGMENT][0]
        assert vs.depends_on_prev is False
        assert fs.depends_on_prev is True

    def test_framebuffer_written(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        img = res.framebuffer.as_image()
        assert (img[..., :3].sum(axis=2) > 0).sum() > 100

    def test_draw_stats_consistent(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        d = res.draw_stats[0]
        assert d.triangles_rasterized <= d.triangles_submitted
        assert d.fragments > 0
        assert d.vs_invocations >= d.unique_vertices
        assert d.vs_invocations % 32 == 0
        assert len(d.tex_lines_per_cta) > 0

    def test_fragment_count_matches_colored_pixels(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        img = res.framebuffer.as_image()
        colored = int((img[..., :3].sum(axis=2) > 0).sum())
        # Every shaded fragment wrote a distinct surviving pixel (one draw,
        # early-Z in order), so counts match exactly.
        assert res.draw_stats[0].fragments == colored

    def test_empty_draw_list_rejected(self, simple_setup):
        pipe, cam = simple_setup
        with pytest.raises(ValueError):
            pipe.render_frame([], cam, 64, 64)

    def test_lod_off_increases_tex_traffic(self):
        textures = {"tex": Texture2D("tex", checkerboard(128))}
        cam = Camera(eye=(0, 2, -6), target=(0, 0, 0))
        res_on = one_draw(GraphicsPipeline(
            textures, config=PipelineConfig(lod_enabled=True)), cam)
        res_off = one_draw(GraphicsPipeline(
            {"tex": Texture2D("tex", checkerboard(128))},
            config=PipelineConfig(lod_enabled=False)), cam)
        assert res_off.tex_transactions > res_on.tex_transactions

    def test_unknown_texture_raises(self, simple_setup):
        pipe, cam = simple_setup
        with pytest.raises((KeyError, ValueError)):
            one_draw(pipe, cam, slots=("missing",))

    def test_too_few_texture_slots_raises(self, simple_setup):
        pipe, cam = simple_setup
        with pytest.raises(ValueError, match="slot"):
            one_draw(pipe, cam, shader="lit2", slots=("tex",))

    def test_instanced_draw_multiplies_invocations(self):
        from repro.graphics.geometry import DrawCall
        from repro.scenes.assets import asteroid_field, rock_mesh
        layers = [checkerboard(32) for _ in range(3)]
        textures = {"arr": Texture2D("arr", checkerboard(32), layers=layers)}
        pipe = GraphicsPipeline(textures)
        cam = Camera(eye=(0, 3, -12), target=(0, 0, 0))
        rock = rock_mesh(seed=1, rings=4, segments=6)
        inst = asteroid_field(8, seed=2)
        draw = DrawCall(rock, texture_slots=["arr"], shader="instanced",
                        instances=inst)
        res = pipe.render_frame([draw], cam, 96, 54)
        single = pipe.tracegen  # invocations scale with instance count
        d = res.draw_stats[0]
        assert d.vs_invocations % 8 == 0
        assert d.batches % 8 == 0

    def test_early_z_reduces_fragments(self):
        textures = {"tex": Texture2D("tex", checkerboard(64))}
        cam = Camera(eye=(0, 1, -6), target=(0, 0, 0))
        from repro.graphics.geometry import DrawCall
        front = box_mesh((4, 4, 0.2), center=(0, 0, -1), name="front")
        back = box_mesh((4, 4, 0.2), center=(0, 0, 2), name="back")
        draws = [DrawCall(front, texture_slots=["tex"], name="front"),
                 DrawCall(back, texture_slots=["tex"], name="back")]
        res = GraphicsPipeline(textures).render_frame(draws, cam, 96, 54)
        front_frags = res.draw_stats[0].fragments
        back_frags = res.draw_stats[1].fragments
        assert back_frags < front_frags * 0.5

    def test_pipeline_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(batch_size=2)
        with pytest.raises(ValueError):
            PipelineConfig(tile_size=15)


class TestTraceContents:
    def test_memory_classes_present(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        classes = set()
        for k in res.kernels:
            fp = k.memory_footprint()
            classes.update(fp)
        assert DataClass.VERTEX in classes
        assert DataClass.PIPELINE in classes
        assert DataClass.TEXTURE in classes
        assert DataClass.FRAMEBUFFER in classes

    def test_tex_transactions_counted(self, simple_setup):
        pipe, cam = simple_setup
        res = one_draw(pipe, cam)
        tex_in_trace = 0
        for k in res.kernels:
            for cta in k.ctas:
                for w in cta.warps:
                    for inst in w:
                        if inst.op is Op.TEX:
                            tex_in_trace += inst.mem.num_transactions
        assert tex_in_trace == res.tex_transactions


class TestVulkanAPI:
    def make_device(self):
        dev = Device()
        dev.create_texture(Texture2D("tex", checkerboard(32)))
        return dev

    def record(self, dev):
        cb = dev.create_command_buffer().begin()
        fb = Framebuffer(64, 36)
        cb.begin_render_pass(fb, Camera(eye=(0, 2, -5)))
        cb.bind_pipeline("basic")
        cb.bind_textures(["tex"])
        cb.bind_vertex_buffer(grid_mesh(3, 3, extent=4.0))
        cb.draw_indexed("g")
        cb.end_render_pass()
        return cb.end()

    def test_full_flow(self):
        dev = self.make_device()
        res = dev.create_queue().submit(self.record(dev), 64, 36)
        assert res.kernels

    def test_draw_without_pipeline_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        cb.begin_render_pass(Framebuffer(64, 36), Camera())
        cb.bind_vertex_buffer(grid_mesh(2, 2))
        with pytest.raises(VulkanError, match="pipeline"):
            cb.draw_indexed()

    def test_draw_outside_render_pass_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        cb.bind_pipeline("basic")
        cb.bind_vertex_buffer(grid_mesh(2, 2))
        with pytest.raises(VulkanError, match="render pass"):
            cb.draw_indexed()

    def test_submit_unended_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        with pytest.raises(VulkanError, match="end"):
            dev.create_queue().submit(cb, 64, 36)

    def test_end_with_open_pass_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        cb.begin_render_pass(Framebuffer(64, 36), Camera())
        with pytest.raises(VulkanError, match="render pass"):
            cb.end()

    def test_bind_unknown_texture_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        with pytest.raises(VulkanError, match="missing"):
            cb.bind_textures(["missing"])

    def test_duplicate_texture_name_fails(self):
        dev = self.make_device()
        with pytest.raises(VulkanError):
            dev.create_texture(Texture2D("tex", checkerboard(32)))

    def test_submit_empty_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        cb.begin_render_pass(Framebuffer(64, 36), Camera())
        cb.end_render_pass()
        cb.end()
        with pytest.raises(VulkanError, match="draws"):
            dev.create_queue().submit(cb, 64, 36)

    def test_begin_twice_fails(self):
        dev = self.make_device()
        cb = dev.create_command_buffer().begin()
        with pytest.raises(VulkanError):
            cb.begin()


class TestFramebuffer:
    def test_validates_dims(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 10)

    def test_pixel_addresses_require_place(self):
        fb = Framebuffer(8, 8)
        with pytest.raises(RuntimeError):
            fb.pixel_addresses(np.array([0]), np.array([0]))

    def test_pixel_addresses_row_major(self):
        from repro.memory import AddressAllocator
        fb = Framebuffer(8, 8)
        fb.place(AddressAllocator(region=6))
        a = fb.pixel_addresses(np.array([0, 1, 0]), np.array([0, 0, 1]))
        assert a[1] - a[0] == 4
        assert a[2] - a[0] == 32

    def test_clear_resets(self):
        fb = Framebuffer(4, 4)
        fb.write_color(np.array([1]), np.array([1]),
                       np.array([[1, 1, 1, 1]], dtype=np.float32))
        fb.clear()
        assert fb.color[1, 1, 0] == 0.0
        assert np.isinf(fb.depth).all()
