"""Property-based tests of rasterization invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.graphics.raster import backface_cull, rasterize_batch

SIZE = 48


def raster(tri_pts, depth=None, early_z=True, depth_func="less"):
    screen = np.array([[x, y, z] for x, y, z in tri_pts], dtype=float)
    tris = backface_cull(screen, np.array([[0, 1, 2]]))
    if depth is None:
        depth = np.full((SIZE, SIZE), np.inf)
    attrs = {"uv": np.array([[0, 0], [1, 0], [0, 1]], dtype=float)}
    return rasterize_batch(screen, np.ones(3), tris, attrs, depth,
                           early_z=early_z, depth_func=depth_func), depth


coord = st.floats(-10.0, SIZE + 10.0)
depth_val = st.floats(0.01, 0.99)


@st.composite
def triangle(draw):
    pts = [(draw(coord), draw(coord), draw(depth_val)) for _ in range(3)]
    return pts


@settings(max_examples=60, deadline=None)
@given(triangle())
def test_property_fragments_on_screen_and_in_bbox(tri):
    fb, _ = raster(tri)
    if fb.count == 0:
        return
    xs = [p[0] for p in tri]
    ys = [p[1] for p in tri]
    assert fb.x.min() >= max(0, int(np.floor(min(xs))))
    assert fb.x.max() <= min(SIZE - 1, int(np.ceil(max(xs))))
    assert fb.y.min() >= max(0, int(np.floor(min(ys))))
    assert fb.y.max() <= min(SIZE - 1, int(np.ceil(max(ys))))
    assert np.all(fb.x >= 0) and np.all(fb.x < SIZE)
    assert np.all(fb.y >= 0) and np.all(fb.y < SIZE)


@settings(max_examples=60, deadline=None)
@given(triangle())
def test_property_no_duplicate_pixels(tri):
    fb, _ = raster(tri)
    keys = fb.y.astype(np.int64) * SIZE + fb.x
    assert len(np.unique(keys)) == fb.count


@settings(max_examples=60, deadline=None)
@given(triangle())
def test_property_depth_within_vertex_range(tri):
    fb, _ = raster(tri)
    if fb.count == 0:
        return
    zs = [p[2] for p in tri]
    assert fb.depth.min() >= min(zs) - 1e-9
    assert fb.depth.max() <= max(zs) + 1e-9


@settings(max_examples=60, deadline=None)
@given(triangle())
def test_property_uv_barycentric_bounds(tri):
    fb, _ = raster(tri)
    if fb.count == 0:
        return
    uv = fb.attrs["uv"]
    # Vertex uvs are (0,0),(1,0),(0,1): interpolants stay in the simplex.
    assert np.all(uv >= -1e-9)
    assert np.all(uv.sum(axis=1) <= 1.0 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(triangle(), triangle())
def test_property_early_z_never_increases_fragments(t1, t2):
    depth_a = np.full((SIZE, SIZE), np.inf)
    fb1a, _ = raster(t1, depth=depth_a)
    fb2a, _ = raster(t2, depth=depth_a)
    depth_b = np.full((SIZE, SIZE), np.inf)
    fb1b, _ = raster(t1, depth=depth_b, early_z=False)
    fb2b, _ = raster(t2, depth=depth_b, early_z=False)
    assert fb1a.count + fb2a.count <= fb1b.count + fb2b.count


@settings(max_examples=40, deadline=None)
@given(triangle())
def test_property_lequal_repass_shades_same_pixels(tri):
    """After a depth pre-pass of the same triangle, a LEQUAL color pass
    shades exactly the pixels the pre-pass resolved."""
    depth = np.full((SIZE, SIZE), np.inf)
    pre, _ = raster(tri, depth=depth)
    color, _ = raster(tri, depth=depth, depth_func="lequal")
    assert color.count == pre.count


@settings(max_examples=40, deadline=None)
@given(triangle())
def test_property_winding_culls_exactly_one_orientation(tri):
    screen = np.array([[x, y, z] for x, y, z in tri], dtype=float)
    fwd = backface_cull(screen, np.array([[0, 1, 2]]))
    rev = backface_cull(screen, np.array([[0, 2, 1]]))
    # A non-degenerate triangle survives in exactly one winding.
    assert len(fwd) + len(rev) <= 1
