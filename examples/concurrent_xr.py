#!/usr/bin/env python3
"""The paper's motivating scenario: an XR frame sharing the GPU.

A mixed-reality system renders the scene (Sponza PBR — the Godot/Monado
workload) while the system's visual-inertial odometry runs on the same GPU.
Naively time-sharing hurts both; CRISP lets you measure the contention and
try spatial-sharing policies.

Run:  python examples/concurrent_xr.py
"""

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import COMPUTE_STREAM, CRISP, GRAPHICS_STREAM


def describe(tag, stats, stream, clock_mhz):
    s = stats.stream(stream)
    ms = s.busy_cycles / (clock_mhz * 1e3)
    print("  %-9s %8d cycles (%.2f ms)  IPC %5.2f  L1 hit %5.1f%%"
          % (tag, s.busy_cycles, ms, s.ipc, s.l1_hit_rate * 100))


def main():
    crisp = CRISP(JETSON_ORIN_MINI)
    clock = crisp.config.core_clock_mhz

    print("Tracing workloads...")
    frame = crisp.trace_scene("SPH", "2k")      # Sponza PBR rendering
    vio = crisp.trace_compute("VIO")            # visual-inertial odometry

    print("\n-- Each workload alone on the whole GPU --")
    gfx_alone = simulate(config=crisp.config,
                         streams={GRAPHICS_STREAM: frame.kernels}).stats
    describe("rendering", gfx_alone, GRAPHICS_STREAM, clock)
    vio_alone = simulate(config=crisp.config,
                         streams={GRAPHICS_STREAM: vio}).stats
    describe("VIO", vio_alone, GRAPHICS_STREAM, clock)

    print("\n-- Concurrent, intra-SM fine-grained sharing (async compute) --")
    pair_stats = simulate(config=crisp.config,
                          streams={GRAPHICS_STREAM: frame.kernels,
                                   COMPUTE_STREAM: vio},
                          policy="fg-even").stats
    describe("rendering", pair_stats, GRAPHICS_STREAM, clock)
    describe("VIO", pair_stats, COMPUTE_STREAM, clock)
    print("  total: %d cycles" % pair_stats.cycles)

    serial = gfx_alone.cycles + vio_alone.cycles
    print("\nSerial execution would take %d cycles; concurrent takes %d "
          "(%.2fx speedup)" % (serial, pair_stats.cycles,
                               serial / pair_stats.cycles))
    slowdown = pair_stats.stream_cycles(GRAPHICS_STREAM) / gfx_alone.cycles
    print("Rendering pays %.1f%% frame-time overhead for hosting VIO — the "
          "QoS cost a runtime manager must budget." % ((slowdown - 1) * 100))


if __name__ == "__main__":
    main()
