#!/usr/bin/env python3
"""Render every catalog scene and write the framebuffers as PPM images.

The functional pipeline's output (the Fig 5 "Planets rendered by the model"
analog).  Images land in ``examples/out/``.

Run:  python examples/render_scenes.py [--res 2k|4k]
"""

import argparse
import os

import numpy as np

from repro.graphics import GraphicsPipeline
from repro.scenes import build_scene, resolution, scene_codes, scene_title


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write a (H, W, 4) uint8 RGBA image as binary PPM (RGB)."""
    h, w = image.shape[:2]
    with open(path, "wb") as f:
        f.write(b"P6\n%d %d\n255\n" % (w, h))
        f.write(image[..., :3].tobytes())


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--res", default="2k", choices=("2k", "4k"))
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "out"))
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    w, h = resolution(args.res)

    for code in scene_codes():
        scene = build_scene(code)
        pipe = GraphicsPipeline(scene.textures)
        result = pipe.render_frame(scene.draws, scene.camera, w, h)
        path = os.path.join(args.out, "%s_%s.ppm" % (code, args.res))
        write_ppm(path, result.framebuffer.as_image())
        frags = sum(d.fragments for d in result.draw_stats)
        print("%-4s %-28s %5d tris -> %6d fragments -> %s"
              % (code, scene_title(code), scene.total_triangles, frags, path))


if __name__ == "__main__":
    main()
