#!/usr/bin/env python3
"""Render-to-texture: shadow mapping through the CRISP pipeline.

Two passes: a depth-only pass from the light builds a shadow map, then the
main pass shades with a shader that samples it.  The shadow texture
*aliases the depth render target*, so the second pass's texture reads hit
the lines the first pass wrote — cross-pass data reuse through the caches,
the communication pattern the paper's L2 studies revolve around.

Run:  python examples/shadow_study.py
"""

import os

from repro.config import JETSON_ORIN_MINI
from repro.core import CRISP
from repro.graphics import Camera, GraphicsPipeline, Texture2D, checkerboard
from repro.graphics.geometry import DrawCall
from repro.isa import DataClass
from repro.scenes.assets import grid_mesh, sphere_mesh


def write_ppm(path, image):
    h, w = image.shape[:2]
    with open(path, "wb") as f:
        f.write(b"P6\n%d %d\n255\n" % (w, h))
        f.write(image[..., :3].tobytes())


def main():
    textures = {"diffuse": Texture2D("diffuse", checkerboard(64))}
    pipe = GraphicsPipeline(textures)
    draws = [
        DrawCall(grid_mesh(8, 8, extent=6.0, name="floor"),
                 texture_slots=["diffuse", "shadow_map"],
                 shader="shadowed", name="floor"),
        DrawCall(sphere_mesh(10, 14, radius=1.0, center=(0, 1.6, 0),
                             name="ball"),
                 texture_slots=["diffuse", "shadow_map"],
                 shader="shadowed", name="ball"),
    ]
    light = Camera(eye=(5, 9, -5), target=(0, 0, 0), fov_y=1.2)
    camera = Camera(eye=(0, 3, -7), target=(0, 0.8, 0))

    shadow_kernels, shadow_tex = pipe.render_shadow_map(draws, light, size=128)
    print("shadow pass: %d depth-only kernels, map %dx%d"
          % (len(shadow_kernels), shadow_tex.width, shadow_tex.height))

    frame = pipe.render_frame(draws, camera, 192, 108)
    print("main pass: %d kernels, %d fragments"
          % (len(frame.kernels),
             sum(d.fragments for d in frame.draw_stats)))

    crisp = CRISP(JETSON_ORIN_MINI)
    from repro.api import simulate
    stats = simulate(
        config=crisp.config,
        streams={0: list(shadow_kernels) + list(frame.kernels)}).stats
    s = stats.stream(0)
    print("\nfull frame (shadow + main): %d cycles, %d TEX transactions, "
          "L1 hit %.1f%%" % (stats.cycles, s.l1_tex_accesses,
                             s.l1_hit_rate * 100))

    out = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out, exist_ok=True)
    write_ppm(os.path.join(out, "shadow_scene.ppm"),
              frame.framebuffer.as_image())
    print("image -> %s/shadow_scene.ppm" % out)


if __name__ == "__main__":
    main()
