#!/usr/bin/env python3
"""Multi-frame rendering: orbit the camera and track frame time.

Renders a short orbit around the Material-testers scene, simulating each
frame on the timing model.  Frame time varies with what is on screen
(triangle visibility, texture footprint) — the per-frame variation a
runtime manager has to plan QoS around (the paper's future-work point).

Run:  python examples/animation.py [--frames 8]
"""

import argparse
import math

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import CRISP, GRAPHICS_STREAM
from repro.graphics import Camera, GraphicsPipeline
from repro.scenes import build_scene, resolution


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--scene", default="MT")
    args = parser.parse_args()

    crisp = CRISP(JETSON_ORIN_MINI)
    scene = build_scene(args.scene)
    pipe = GraphicsPipeline(scene.textures)
    w, h = resolution("2k")
    clock_khz = crisp.config.core_clock_mhz * 1e3

    cameras = []
    for i in range(args.frames):
        angle = 2 * math.pi * i / args.frames
        cameras.append(Camera(
            eye=(6.0 * math.sin(angle), 2.0, -6.0 * math.cos(angle)),
            target=(0.0, 1.0, 0.0), fov_y=0.95))

    print("%5s %10s %10s %9s %8s" % ("frame", "fragments", "cycles",
                                     "ms", "fps-eq"))
    total_cycles = 0
    for i, camera in enumerate(cameras):
        frame = pipe.render_frame(scene.draws, camera, w, h)
        stats = simulate(config=crisp.config,
                         streams={GRAPHICS_STREAM: frame.kernels}).stats
        frags = sum(d.fragments for d in frame.draw_stats)
        ms = stats.cycles / clock_khz
        print("%5d %10d %10d %9.3f %8.0f"
              % (i, frags, stats.cycles, ms, 1000.0 / ms if ms else 0))
        total_cycles += stats.cycles
    print("\nserial frames: %.3f ms mean frame time"
          % (total_cycles / args.frames / clock_khz))

    # Swapchain mode: all frames in one pipelined stream (frame N+1's
    # vertex work overlaps frame N's fragments across the double buffer).
    pipe2 = GraphicsPipeline(build_scene(args.scene).textures)
    seq = pipe2.render_sequence(scene.draws, cameras, w, h)
    stats = simulate(config=crisp.config,
                     streams={GRAPHICS_STREAM: seq.kernels}).stats
    print("swapchain-pipelined: %.3f ms mean frame time (%.2fx throughput)"
          % (stats.cycles / args.frames / clock_khz,
             total_cycles / stats.cycles))


if __name__ == "__main__":
    main()
