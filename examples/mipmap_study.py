#!/usr/bin/env python3
"""The Fig 8/9 study: what mipmapping does to images and memory traffic.

Renders Sponza with LoD on and off, reports per-draw L1 texture
transactions (the Fig 9 effect), and writes both frames so the visual
difference (Fig 8: aliasing vs smooth transitions) can be inspected.

Run:  python examples/mipmap_study.py
"""

import os

import numpy as np

from repro.core import CRISP
from repro.scenes import resolution


def write_ppm(path, image):
    h, w = image.shape[:2]
    with open(path, "wb") as f:
        f.write(b"P6\n%d %d\n255\n" % (w, h))
        f.write(image[..., :3].tobytes())


def main():
    crisp = CRISP()
    out = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out, exist_ok=True)

    frame_on = crisp.trace_scene("SPL", "2k", lod_enabled=True)
    frame_off = crisp.trace_scene("SPL", "2k", lod_enabled=False)

    print("%-12s %12s %12s %8s" % ("draw", "tex tx (LoD)", "tex tx (mip0)",
                                   "ratio"))
    for d_on, d_off in zip(frame_on.draw_stats, frame_off.draw_stats):
        if not d_on.tex_transactions:
            continue
        print("%-12s %12d %12d %7.2fx"
              % (d_on.name, d_on.tex_transactions, d_off.tex_transactions,
                 d_off.tex_transactions / d_on.tex_transactions))
    total_on = frame_on.tex_transactions
    total_off = frame_off.tex_transactions
    print("\nTotal L1 texture transactions: %d with LoD, %d without "
          "(%.1fx inflation without mipmapping)"
          % (total_on, total_off, total_off / total_on))

    img_on = frame_on.framebuffer.as_image()
    img_off = frame_off.framebuffer.as_image()
    write_ppm(os.path.join(out, "sponza_lod_on.ppm"), img_on)
    write_ppm(os.path.join(out, "sponza_lod_off.ppm"), img_off)
    diff = np.abs(img_on[..., :3].astype(int) - img_off[..., :3].astype(int))
    print("Images written to %s (mean per-pixel difference: %.1f)"
          % (out, diff.mean()))


if __name__ == "__main__":
    main()
