#!/usr/bin/env python3
"""Compare every GPU partitioning policy on a rendering+compute pair.

Reproduces the Section VI-C methodology interactively: pick a scene and a
compute workload, run them under each policy, and compare total time and
per-stream slowdowns against MPS.

Run:  python examples/partition_study.py [--scene PT] [--compute NN]
"""

import argparse

from repro.config import JETSON_ORIN_MINI
from repro.core import COMPUTE_STREAM, CRISP, GRAPHICS_STREAM, POLICY_NAMES


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="PT",
                        choices=("SPH", "PL", "MT", "SPL", "PT", "IT"))
    parser.add_argument("--compute", default="NN",
                        choices=("VIO", "HOLO", "NN"))
    parser.add_argument("--res", default="4k", choices=("2k", "4k"))
    args = parser.parse_args()

    crisp = CRISP(JETSON_ORIN_MINI)
    frame = crisp.trace_scene(args.scene, args.res)
    compute = crisp.trace_compute(args.compute)
    print("Pair: %s (%d gfx kernels) + %s (%d compute kernels)\n"
          % (args.scene, len(frame.kernels), args.compute, len(compute)))

    rows = []
    for policy in POLICY_NAMES:
        if policy == "shared":
            continue  # the unpartitioned baseline launches exhaustively
        result = crisp.run_pair(frame.kernels, compute, policy=policy)
        rows.append((policy, result.total_cycles,
                     result.graphics_cycles, result.compute_cycles))

    base = dict((r[0], r[1]) for r in rows)["mps"]
    print("%-14s %10s %9s %10s %10s" % ("policy", "total", "vs mps",
                                        "gfx cyc", "cmp cyc"))
    for policy, total, gfx, cmp_ in rows:
        print("%-14s %10d %8.3fx %10d %10d"
              % (policy, total, base / total, gfx, cmp_))


if __name__ == "__main__":
    main()
