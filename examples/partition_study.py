#!/usr/bin/env python3
"""Compare every GPU partitioning policy on a rendering+compute pair.

Reproduces the Section VI-C methodology interactively: pick a scene and a
compute workload, run them under each policy, and compare total time and
per-stream slowdowns against MPS.

The sweep itself is a campaign (`repro.campaign`): one declarative job per
policy, fanned out over `--jobs` worker processes and served from the
result cache when `--cache-dir` is given.  The equivalent one-liner is::

    python -m repro campaign --scene PT --compute NN --res 4k \
        --policy mps mig fg-even warped-slicer tap --jobs 4

Run:  python examples/partition_study.py [--scene PT] [--compute NN]
"""

import argparse

from repro.campaign import CampaignRunner, Job
from repro.core import COMPUTE_STREAM, GRAPHICS_STREAM, POLICY_NAMES


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="PT",
                        choices=("SPH", "PL", "MT", "SPL", "PT", "IT"))
    parser.add_argument("--compute", default="NN",
                        choices=("VIO", "HOLO", "NN"))
    parser.add_argument("--res", default="4k", choices=("nano", "2k", "4k"))
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the policy sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse results across invocations")
    args = parser.parse_args()

    # The unpartitioned "shared" baseline launches exhaustively; skip it.
    policies = [p for p in POLICY_NAMES if p != "shared"]
    jobs = [Job(scene=args.scene, compute=args.compute, policy=policy,
                config="JetsonOrin-mini", res=args.res, label=policy)
            for policy in policies]

    runner = CampaignRunner(workers=args.jobs, cache_dir=args.cache_dir,
                            progress=True)
    campaign = runner.run(jobs)
    print("Pair: %s + %s @ %s (%d jobs, %d simulated, %d cached)\n"
          % (args.scene, args.compute, args.res, len(jobs),
             campaign.executed, campaign.cached))

    base = dict(zip(policies, campaign.results))["mps"].total_cycles
    print("%-14s %10s %9s %10s %10s" % ("policy", "total", "vs mps",
                                        "gfx cyc", "cmp cyc"))
    for policy, result in zip(policies, campaign.results):
        print("%-14s %10d %8.3fx %10d %10d"
              % (policy, result.total_cycles, base / result.total_cycles,
                 result.stream_cycles(GRAPHICS_STREAM),
                 result.stream_cycles(COMPUTE_STREAM)))


if __name__ == "__main__":
    main()
