#!/usr/bin/env python3
"""Quickstart: render a frame, replay it on the GPU timing model.

The two-line summary of CRISP: the graphics pipeline executes draw calls
functionally and records shader traces; the Accel-Sim-style timing model
replays those traces cycle by cycle.

Run:  python examples/quickstart.py
"""

from repro.api import simulate
from repro.config import JETSON_ORIN_MINI
from repro.core import CRISP, GRAPHICS_STREAM

def main():
    crisp = CRISP(JETSON_ORIN_MINI)

    # 1. Trace one frame of the Khronos Sponza scene at the 2K-scaled
    #    resolution.  This runs the full functional pipeline: vertex
    #    batching, transform, cull, rasterize with early-Z and LoD,
    #    texture sampling, framebuffer writes.
    frame = crisp.trace_scene("SPL", "2k")
    print("Rendered %d draw calls -> %d shader kernels, %d instructions"
          % (len(frame.draw_stats), len(frame.kernels),
             frame.total_instructions))
    for d in frame.draw_stats[:5]:
        print("  draw %-10s: %5d tris submitted, %5d rasterized, "
              "%6d fragments" % (d.name, d.triangles_submitted,
                                 d.triangles_rasterized, d.fragments))

    # 2. Replay the traces on the timing model (the whole GPU to itself).
    stats = simulate(config=crisp.config,
                     streams={GRAPHICS_STREAM: frame.kernels}).stats
    s = stats.stream(0)
    print("\nTiming simulation on %s:" % crisp.config.name)
    print("  frame time      : %d cycles (%.2f ms at %d MHz)"
          % (stats.cycles, stats.cycles / (crisp.config.core_clock_mhz * 1e3),
             crisp.config.core_clock_mhz))
    print("  instructions    : %d (IPC %.2f)" % (s.instructions, s.ipc))
    print("  L1 hit rate     : %.1f%%" % (s.l1_hit_rate * 100))
    print("  L1 TEX accesses : %d" % s.l1_tex_accesses)
    print("  CTAs executed   : %d" % s.ctas_completed)


if __name__ == "__main__":
    main()
